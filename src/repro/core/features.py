"""Byzantine feature estimation (Section IV-C).

Bundles the three features the collector needs:

1. the **poisoned side** (Algorithm 3);
2. the **proportion of Byzantine users** ``gamma_hat = sum(y_hat)``
   (Equation 9);
3. the **poison-value histogram** ``y_hat`` (and its mean ``M_alpha``,
   Equation 11).

``estimate_byzantine_features`` runs the whole pipeline on one batch of
reports; the DAP protocol calls it per group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.emf import EMFResult
from repro.core.probing import SideProbeResult, probe_poisoned_side
from repro.core.transform import default_bucket_counts


@dataclass
class ByzantineFeatures:
    """The probed features of the colluding attackers.

    Attributes
    ----------
    gamma_hat:
        Estimated fraction of reports that are poison.
    side:
        Estimated poisoned side (``"left"`` or ``"right"``).
    poison_histogram:
        Reconstructed poison-value histogram over the poison buckets.
    poison_bucket_centers:
        Output-domain centre of each poison bucket.
    poison_mean:
        Mean of the reconstructed poison values (Equation 11's ``M_alpha``).
    probe:
        The underlying side-probe result (contains both EMF runs).
    """

    gamma_hat: float
    side: str
    poison_histogram: np.ndarray
    poison_bucket_centers: np.ndarray
    poison_mean: float
    probe: SideProbeResult

    @property
    def emf(self) -> EMFResult:
        """The EMF result of the selected side."""
        return self.probe.selected

    def estimated_byzantine_count(self, n_reports: int) -> float:
        """``m_hat = gamma_hat * N`` for a batch of ``n_reports`` reports."""
        return self.gamma_hat * float(n_reports)


def estimate_byzantine_features(
    mechanism,
    reports: np.ndarray | None = None,
    n_input_buckets: int | None = None,
    n_output_buckets: int | None = None,
    reference_mean: float | None = None,
    epsilon: float | None = None,
    tol: float | None = None,
    counts: np.ndarray | None = None,
    n_reports: int | None = None,
    strategy: str = "batched",
    warm_start: Mapping[str, np.ndarray] | None = None,
    poison_domain: tuple[float, float] | None = None,
) -> ByzantineFeatures:
    """Probe the Byzantine features from one batch of reports.

    Bucket counts default to the paper's ``d' = floor(sqrt(N))`` and
    ``d = floor(d' (e^{eps/2}-1)/(e^{eps/2}+1))``.

    The batch may be given either as raw ``reports`` or as streaming
    sufficient statistics: output-grid ``counts`` (length
    ``n_output_buckets``, which is then required) plus ``n_reports`` (used
    for the default bucket formulas; defaults to ``counts.sum()``).

    ``strategy`` selects how the side hypotheses are evaluated,
    ``warm_start`` optionally seeds both side EMs from a previous probe's
    converged weights, and ``poison_domain`` restricts the poison-column
    support when the trust model bounds the adversary's values (see
    :func:`repro.core.probing.probe_poisoned_side`).
    """
    if (reports is None) == (counts is None):
        raise ValueError("provide exactly one of `reports` or `counts`")
    epsilon = mechanism.epsilon if epsilon is None else epsilon
    if counts is not None:
        counts = np.asarray(counts, dtype=float)
        if n_output_buckets is None:
            raise ValueError("n_output_buckets is required with pre-computed counts")
        if n_reports is None:
            n_reports = int(counts.sum())
    else:
        reports = np.asarray(reports, dtype=float)
        n_reports = reports.size
    if n_output_buckets is None or n_input_buckets is None:
        d_in, d_out = default_bucket_counts(max(1, n_reports), epsilon)
        n_input_buckets = n_input_buckets or d_in
        n_output_buckets = n_output_buckets or d_out

    probe = probe_poisoned_side(
        mechanism,
        reports,
        n_input_buckets=n_input_buckets,
        n_output_buckets=n_output_buckets,
        reference_mean=reference_mean,
        epsilon=epsilon,
        tol=tol,
        counts=counts,
        strategy=strategy,
        warm_start=warm_start,
        poison_domain=poison_domain,
    )
    emf = probe.selected
    return ByzantineFeatures(
        gamma_hat=emf.gamma_hat,
        side=probe.side,
        poison_histogram=emf.poison_histogram.copy(),
        poison_bucket_centers=emf.transform.poison_bucket_centers.copy(),
        poison_mean=emf.poison_mean,
        probe=probe,
    )


__all__ = ["ByzantineFeatures", "estimate_byzantine_features"]
