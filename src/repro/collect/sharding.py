"""Deterministic shard plans for parallel collection.

A collection round over millions of users is map-reducible by construction:
every accumulator in :mod:`repro.collect.accumulators` carries an associative
``merge()``, so disjoint slices of the report stream can be accumulated
independently and folded back together.  What makes the *parallel* execution
deterministic is the seeding scheme captured here:

* each group's user range is cut into fixed-size **blocks** of
  ``block_size`` users, and one independent seed is pre-drawn per block from
  the master generator, in canonical (group-major, normal-before-byzantine)
  order — one draw, mirroring the engine's pre-drawn seed matrix;
* a **shard** is a contiguous run of whole blocks
  (``numpy.array_split`` over the block index), so every block's reports
  depend only on its own seed and its users' values, never on which shard or
  worker processed it.

Because the blocks — not the shards — own the randomness, the merged
statistics are bit-identical at **any** shard count and any worker count:
``n_shards`` and the process-pool size are pure execution details, on the
same footing as the engine's ``n_workers``.  Only ``block_size`` is part of
the run's identity (it decides how the per-block generators are consumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Tuple

import numpy as np

from repro.resilience.pool import ResilientPool
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_integer

#: the :class:`~repro.resilience.pool.ResilientPool` seam name for shard
#: dispatch — fault plans target collection shards through this scope
SHARD_POOL_LABEL = "collect.shard"

#: users per seed block — the granularity of the pre-drawn seed stream
DEFAULT_SHARD_BLOCK = 65_536


def _n_blocks(count: int, block_size: int) -> int:
    return -(-count // block_size) if count else 0


@dataclass(frozen=True)
class ShardSlice:
    """One group's share of one shard.

    Attributes
    ----------
    group_index:
        Index of the group this slice belongs to.
    normal_start, normal_stop:
        Contiguous range of the group's normal users covered by this shard
        (indices into the group's normal-value array).
    normal_seeds:
        One seed per normal block in the range, in block order.
    n_byzantine:
        Number of the group's Byzantine users covered by this shard.
    byzantine_seeds:
        One seed per Byzantine block, in block order.
    """

    group_index: int
    normal_start: int
    normal_stop: int
    normal_seeds: Tuple[int, ...]
    n_byzantine: int
    byzantine_seeds: Tuple[int, ...]

    @property
    def n_normal(self) -> int:
        return self.normal_stop - self.normal_start

    @property
    def n_users(self) -> int:
        return self.n_normal + self.n_byzantine


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic split of per-group user ranges into shards.

    Built by :func:`build_shard_plan`; ``shard(s)`` returns the
    :class:`ShardSlice` list a worker needs to process shard ``s``.  The
    pre-drawn block seeds make the merged result independent of ``n_shards``
    and of how the shards are scheduled across workers.
    """

    n_shards: int
    block_size: int
    normal_counts: Tuple[int, ...]
    byzantine_counts: Tuple[int, ...]
    normal_seeds: Tuple[Tuple[int, ...], ...]
    byzantine_seeds: Tuple[Tuple[int, ...], ...]

    @property
    def n_groups(self) -> int:
        return len(self.normal_counts)

    def shard(self, shard_index: int) -> List[ShardSlice]:
        """The per-group slices making up one shard (may be empty)."""
        if not 0 <= shard_index < self.n_shards:
            raise IndexError(
                f"shard index {shard_index} out of range [0, {self.n_shards})"
            )
        slices: List[ShardSlice] = []
        for group in range(self.n_groups):
            normal_blocks = _shard_block_range(
                len(self.normal_seeds[group]), self.n_shards, shard_index
            )
            byz_blocks = _shard_block_range(
                len(self.byzantine_seeds[group]), self.n_shards, shard_index
            )
            n0, n1 = normal_blocks
            b0, b1 = byz_blocks
            normal_start = n0 * self.block_size
            normal_stop = min(self.normal_counts[group], n1 * self.block_size)
            byz_start = b0 * self.block_size
            byz_stop = min(self.byzantine_counts[group], b1 * self.block_size)
            if normal_start >= normal_stop and byz_start >= byz_stop:
                continue
            slices.append(
                ShardSlice(
                    group_index=group,
                    normal_start=normal_start,
                    normal_stop=max(normal_start, normal_stop),
                    normal_seeds=self.normal_seeds[group][n0:n1],
                    n_byzantine=max(0, byz_stop - byz_start),
                    byzantine_seeds=self.byzantine_seeds[group][b0:b1],
                )
            )
        return slices

    def shards(self) -> List[List[ShardSlice]]:
        """All shards, in shard order."""
        return [self.shard(index) for index in range(self.n_shards)]


def _shard_block_range(n_blocks: int, n_shards: int, shard_index: int) -> Tuple[int, int]:
    """Contiguous ``[start, stop)`` block range owned by one shard.

    Matches ``numpy.array_split(arange(n_blocks), n_shards)[shard_index]``:
    the first ``n_blocks % n_shards`` shards take one extra block.
    """
    base, extra = divmod(n_blocks, n_shards)
    start = shard_index * base + min(shard_index, extra)
    stop = start + base + (1 if shard_index < extra else 0)
    return start, stop


def build_shard_plan(
    normal_counts: Sequence[int],
    byzantine_counts: Sequence[int],
    n_shards: int,
    rng: RngLike = None,
    block_size: int = DEFAULT_SHARD_BLOCK,
) -> ShardPlan:
    """Draw the block-seed streams and freeze them into a :class:`ShardPlan`.

    The master generator is consumed exactly once, for a single flat integer
    draw covering every block in canonical order (group 0's normal blocks,
    group 0's Byzantine blocks, group 1's normal blocks, ...), so the plan —
    and hence every downstream report — is a pure function of the generator
    state, ``block_size`` and the group head-counts.
    """
    n_shards = check_integer(n_shards, "n_shards", minimum=1)
    block_size = check_integer(block_size, "block_size", minimum=1)
    normal_counts = tuple(
        check_integer(int(c), "normal count", minimum=0) for c in normal_counts
    )
    byzantine_counts = tuple(
        check_integer(int(c), "byzantine count", minimum=0) for c in byzantine_counts
    )
    if len(normal_counts) != len(byzantine_counts):
        raise ValueError(
            f"normal_counts and byzantine_counts must align, got "
            f"{len(normal_counts)} vs {len(byzantine_counts)} groups"
        )
    rng = ensure_rng(rng)

    block_counts: List[int] = []
    for normal, byzantine in zip(normal_counts, byzantine_counts):
        block_counts.append(_n_blocks(normal, block_size))
        block_counts.append(_n_blocks(byzantine, block_size))
    total_blocks = int(sum(block_counts))
    flat = rng.integers(0, 2**63 - 1, size=total_blocks, dtype=np.int64)

    normal_seeds: List[Tuple[int, ...]] = []
    byzantine_seeds: List[Tuple[int, ...]] = []
    offset = 0
    for index in range(len(normal_counts)):
        n_blocks = block_counts[2 * index]
        normal_seeds.append(tuple(int(s) for s in flat[offset : offset + n_blocks]))
        offset += n_blocks
        n_blocks = block_counts[2 * index + 1]
        byzantine_seeds.append(tuple(int(s) for s in flat[offset : offset + n_blocks]))
        offset += n_blocks

    return ShardPlan(
        n_shards=n_shards,
        block_size=block_size,
        normal_counts=normal_counts,
        byzantine_counts=byzantine_counts,
        normal_seeds=tuple(normal_seeds),
        byzantine_seeds=tuple(byzantine_seeds),
    )


def run_shard_tasks(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    n_workers: int | None,
    pickle_probe: Any = None,
) -> List[Any]:
    """Run shard tasks over the resilient pool harness, in task order.

    The shared execution harness behind every ``collect_sharded`` path, now a
    thin wrapper over :class:`repro.resilience.pool.ResilientPool` (seam
    ``"collect.shard"``).  Results are identical under any worker count, any
    retry, any pool reincarnation and the serial degradation path — each task
    is a pure function of its pre-drawn block seeds.  ``pickle_probe`` (e.g.
    a task's config + attack) is test-pickled before a pool is started;
    unpicklable configurations and pool failures degrade to serial execution
    with a single warning per run, mirroring the experiment executor.

    A fresh pool is started per call: the intended workload is a handful of
    very large rounds (pool startup is noise next to a 10^7-user round);
    sweeps over many small rounds should parallelise across work units with
    the engine's ``n_workers`` instead.
    """
    return ResilientPool(n_workers, SHARD_POOL_LABEL).run(
        worker, tasks, pickle_probe=pickle_probe
    )


__all__ = [
    "DEFAULT_SHARD_BLOCK",
    "SHARD_POOL_LABEL",
    "ShardPlan",
    "ShardSlice",
    "build_shard_plan",
    "run_shard_tasks",
]
