"""General Byzantine Attack (GBA) — Definition 2.

Colluding users may submit *any* values inside the perturbation output domain
``[D_L, D_R]``; nothing about their strategy or distribution is known to the
collector.  This implementation lets the attacker mix mass on both sides of
the reference mean, which is the most general shape; Theorem 1 guarantees any
such attack is equivalent (for mean estimation) to a Biased Byzantine Attack,
and :func:`repro.attacks.reduction.reduce_gba_to_bba` realises that reduction.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackReport
from repro.attacks.distributions import PoisonDistribution, UniformPoison
from repro.ldp.base import NumericalMechanism
from repro.registry import ATTACKS
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction


@ATTACKS.register("gba", aliases=("general",))
class GeneralByzantineAttack(Attack):
    """Arbitrary poison values over the whole output domain.

    Parameters
    ----------
    right_fraction:
        Fraction of Byzantine users whose poison values land on the right of
        the reference mean; the rest land on the left.  ``1.0`` degenerates to
        a right-sided attack, ``0.5`` spreads poison on both sides.
    distribution:
        Poison distribution applied independently on each side (uniform by
        default, matching "arbitrary values" with no further structure).
    """

    def __init__(
        self,
        right_fraction: float = 1.0,
        distribution: PoisonDistribution | None = None,
    ) -> None:
        self.right_fraction = check_fraction(right_fraction, "right_fraction")
        self.distribution = distribution or UniformPoison()

    def poison_reports(
        self,
        n_byzantine: int,
        mechanism: NumericalMechanism,
        reference_mean: float = 0.0,
        rng: RngLike = None,
    ) -> AttackReport:
        n = self._check_population(n_byzantine)
        rng = ensure_rng(rng)
        if n == 0:
            return AttackReport(reports=np.empty(0), poisoned_side="both")
        domain_low, domain_high = mechanism.output_domain
        n_right = int(round(n * self.right_fraction))
        n_left = n - n_right
        pieces = []
        if n_right:
            pieces.append(
                self.distribution.sample(n_right, reference_mean, domain_high, rng)
            )
        if n_left:
            pieces.append(
                self.distribution.sample(n_left, domain_low, reference_mean, rng)
            )
        reports = np.concatenate(pieces) if pieces else np.empty(0)
        reports = self._clip_to_domain(reports, mechanism)
        if n_left == 0:
            side = "right"
        elif n_right == 0:
            side = "left"
        else:
            side = "both"
        return AttackReport(reports=reports, poisoned_side=side)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GeneralByzantineAttack(right_fraction={self.right_fraction:g}, "
            f"distribution={self.distribution!r})"
        )


__all__ = ["GeneralByzantineAttack"]
