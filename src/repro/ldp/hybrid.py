"""Hybrid Mechanism (HM) of Wang et al.

Combines the Piecewise Mechanism and Duchi's mechanism: each report uses PM
with probability ``alpha`` and Duchi otherwise, where ``alpha`` is chosen to
minimise the worst-case variance.  Wang et al. show the optimal mixing is

* ``alpha = 1 - e^{-epsilon/2}`` when ``epsilon > epsilon* ~= 0.61``,
* ``alpha = 0`` (pure Duchi) otherwise.

Included for completeness of the mean-estimation substrate; the DAP protocol
itself is mechanism-agnostic and can be instantiated on top of HM as well.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.ldp.base import NumericalMechanism
from repro.ldp.duchi import DuchiMechanism
from repro.ldp.piecewise import PiecewiseMechanism
from repro.registry import MECHANISMS
from repro.utils.rng import RngLike, ensure_rng

#: threshold above which mixing in PM reduces worst-case variance
EPSILON_STAR = 0.61


@MECHANISMS.register("hybrid", kind="numerical")
class HybridMechanism(NumericalMechanism):
    """Hybrid of :class:`PiecewiseMechanism` and :class:`DuchiMechanism`."""

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        self.piecewise = PiecewiseMechanism(epsilon)
        self.duchi = DuchiMechanism(epsilon)
        if self.epsilon > EPSILON_STAR:
            self.alpha = 1.0 - math.exp(-self.epsilon / 2.0)
        else:
            self.alpha = 0.0

    @property
    def output_domain(self) -> Tuple[float, float]:
        low = min(self.piecewise.output_domain[0], self.duchi.output_domain[0])
        high = max(self.piecewise.output_domain[1], self.duchi.output_domain[1])
        return (low, high)

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        values = self._validate_inputs(values)
        use_pm = rng.random(values.size) < self.alpha
        out = np.empty(values.size, dtype=float)
        flat = values.ravel()
        if use_pm.any():
            out[use_pm] = self.piecewise.perturb(flat[use_pm], rng)
        if (~use_pm).any():
            out[~use_pm] = self.duchi.perturb(flat[~use_pm], rng)
        return out.reshape(values.shape)

    def variance(self, value: float) -> float:
        """Per-report variance of the mixture for input ``value``."""
        # Var = alpha * Var_PM + (1 - alpha) * Var_Duchi for an unbiased mixture
        # of two unbiased estimators with the same mean.
        return self.alpha * self.piecewise.variance(value) + (
            1.0 - self.alpha
        ) * self.duchi.variance(value)

    def worst_case_variance(self) -> float:
        return max(self.variance(0.0), self.variance(1.0))


__all__ = ["HybridMechanism", "EPSILON_STAR"]
