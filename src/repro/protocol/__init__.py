"""The protocol pipeline: client → transport → server as a contract.

Public surface of the package (see the module docstrings for the design):

* :class:`~repro.protocol.plan.ProtocolPlan` + :func:`check_protocol` —
  the contract and its identity axis (``"local"`` / ``"shuffle"``).
* :class:`~repro.protocol.pipeline.ProtocolPipeline` — the stage helpers
  every collection path lowers to.
* :class:`~repro.protocol.transport.Shuffler` — the seeded transport.
* :mod:`repro.protocol.amplification` — the local→central epsilon ledger.

Both protocols register into :data:`repro.registry.PROTOCOLS` so
``python -m repro list-components`` lists them and unknown names raise the
usual name-listing ``KeyError``.  Validation on hot paths goes through
:func:`check_protocol` against the plain :data:`PROTOCOL_NAMES` tuple —
never through the registry — so a lookup made while the component modules
are still importing cannot observe a half-populated table.
"""

from repro.registry import PROTOCOLS

from repro.protocol.amplification import (
    DEFAULT_DELTA,
    amplification_ledger,
    amplified_epsilon,
    ledger_summary,
)
from repro.protocol.client import adversary_view, intersection_output_domain
from repro.protocol.pipeline import ProtocolPipeline
from repro.protocol.plan import (
    PROTOCOL_NAMES,
    ProtocolPlan,
    check_contribution_cap,
    check_protocol,
)
from repro.protocol.transport import IdentityTransport, Shuffler, make_transport

PROTOCOLS.register(
    "local",
    kind="trust model",
    summary="classical local model: identity transport, per-group adversary",
)(IdentityTransport)
PROTOCOLS.register(
    "shuffle",
    kind="trust model",
    summary="shuffler breaks sender-group linkage; amplification ledger",
)(Shuffler)

__all__ = [
    "DEFAULT_DELTA",
    "IdentityTransport",
    "PROTOCOL_NAMES",
    "ProtocolPipeline",
    "ProtocolPlan",
    "Shuffler",
    "adversary_view",
    "amplification_ledger",
    "amplified_epsilon",
    "check_contribution_cap",
    "check_protocol",
    "intersection_output_domain",
    "ledger_summary",
    "make_transport",
]
