"""End-to-end tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.engine import load_run
from repro.scenario import ScenarioSpec, run_scenario

TINY_SCENARIO = {
    "name": "tiny",
    "population": {"n_users": 500, "gamma": 0.25},
    "trials": 2,
    "seed": 3,
    "epsilons": [0.5, 1.0],
    "datasets": ["Uniform"],
    "attacks": [
        {"name": "bba", "poison_range": "[C/2,C]", "label": "BBA"},
        "ima",
    ],
    "schemes": ["Ostrich", "Trimming"],
}


def run_cli(*args: str, cwd=None):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
        timeout=300,
    )


@pytest.fixture
def scenario_file(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(TINY_SCENARIO))
    return path


class TestRun:
    def test_run_matches_programmatic_bit_for_bit(self, scenario_file, tmp_path):
        store = tmp_path / "artifact.json"
        result = run_cli("run", str(scenario_file), "--store", str(store))
        assert result.returncode == 0, result.stderr
        assert "8 records" in result.stdout
        assert store.exists()

        programmatic = run_scenario(ScenarioSpec.from_dict(TINY_SCENARIO))
        stored = load_run(store).records
        assert [(r.scheme, r.mse, r.bias) for r in stored] == [
            (r.scheme, r.mse, r.bias) for r in programmatic
        ]

    def test_run_parallel_matches_serial(self, scenario_file, tmp_path):
        serial, parallel = tmp_path / "serial.json", tmp_path / "parallel.json"
        assert run_cli("run", str(scenario_file), "--store", str(serial)).returncode == 0
        assert (
            run_cli(
                "run", str(scenario_file), "--store", str(parallel), "--workers", "2"
            ).returncode
            == 0
        )
        a, b = json.loads(serial.read_text()), json.loads(parallel.read_text())
        assert a["columns"] == b["columns"]

    def test_run_default_store_under_runs(self, scenario_file, tmp_path):
        result = run_cli("run", str(scenario_file), "--quiet", cwd=tmp_path)
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "runs" / "tiny.json").exists()

    def test_unknown_component_fails_cleanly(self, tmp_path):
        bad = dict(TINY_SCENARIO, schemes=["NotAScheme"])
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        result = run_cli("run", str(path))
        assert result.returncode == 1
        assert "unknown scheme" in result.stderr

    def test_missing_scenario_file_names_the_file(self, tmp_path):
        result = run_cli("run", str(tmp_path / "nope.json"))
        assert result.returncode == 1
        assert "nope.json" in result.stderr  # not a bare errno

    def test_invalid_document_fails_cleanly(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(dict(TINY_SCENARIO, bogus=1)))
        result = run_cli("run", str(path))
        assert result.returncode == 1
        assert "unknown scenario keys" in result.stderr


class TestChunkSize:
    def test_run_with_chunk_size_flag(self, tmp_path):
        scenario = dict(TINY_SCENARIO, name="tiny_stream", schemes=["DAP-EMF"])
        path = tmp_path / "stream.json"
        path.write_text(json.dumps(scenario))
        store = tmp_path / "stream_artifact.json"
        result = run_cli(
            "run", str(path), "--store", str(store), "--chunk-size", "128"
        )
        assert result.returncode == 0, result.stderr
        artifact = load_run(store)
        assert artifact.records
        # the chunk size is an execution detail, not part of the run identity
        assert "chunk_size" not in artifact.meta["fingerprint"]

    def test_chunk_size_flag_matches_scenario_key(self, tmp_path):
        flagged = dict(TINY_SCENARIO, name="s1", schemes=["DAP-EMF"])
        keyed = dict(flagged, name="s1", chunk_size=128)
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        p1.write_text(json.dumps(flagged))
        p2.write_text(json.dumps(keyed))
        s1, s2 = tmp_path / "a_art.json", tmp_path / "b_art.json"
        assert (
            run_cli("run", str(p1), "--store", str(s1), "--chunk-size", "128").returncode
            == 0
        )
        assert run_cli("run", str(p2), "--store", str(s2)).returncode == 0
        assert json.loads(s1.read_text())["columns"] == json.loads(s2.read_text())["columns"]

    def test_rejects_bad_chunk_size(self, scenario_file):
        result = run_cli("run", str(scenario_file), "--chunk-size", "0")
        assert result.returncode == 2  # argparse usage error
        assert "positive integer" in result.stderr

    def test_rejects_chunk_size_on_batched_scenario(self, tmp_path):
        batched = dict(TINY_SCENARIO, batched=True)
        path = tmp_path / "batched.json"
        path.write_text(json.dumps(batched))
        result = run_cli("run", str(path), "--chunk-size", "64")
        assert result.returncode == 1
        assert "mutually exclusive" in result.stderr

    def test_resume_in_memory_artifact_with_chunk_size(self, tmp_path):
        """Regression: a completed in-memory run must be resumable (and its
        records reused verbatim) when ``--chunk-size`` is set afterwards —
        the chunk size was wrongly folded into the fingerprint and silently
        refused identical records."""
        scenario = dict(TINY_SCENARIO, name="resume_stream", schemes=["DAP-EMF"])
        path = tmp_path / "resume_stream.json"
        path.write_text(json.dumps(scenario))
        store = tmp_path / "artifact.json"
        assert run_cli("run", str(path), "--store", str(store)).returncode == 0
        before = json.loads(store.read_text())
        result = run_cli(
            "resume", str(path), "--store", str(store), "--chunk-size", "64"
        )
        assert result.returncode == 0, result.stderr
        after = json.loads(store.read_text())
        # every unit was already complete: records reused verbatim under the
        # same fingerprint; only the informational execution provenance moved
        assert after["columns"] == before["columns"]
        assert after["meta"]["fingerprint"] == before["meta"]["fingerprint"]
        assert after["meta"]["execution"]["chunk_size"] == 64


class TestCollectWorkers:
    def test_collect_workers_matches_serial_bit_for_bit(self, tmp_path):
        scenario = dict(TINY_SCENARIO, name="shardy", schemes=["DAP-EMF"])
        path = tmp_path / "shardy.json"
        path.write_text(json.dumps(scenario))
        s1, s2 = tmp_path / "w1.json", tmp_path / "w2.json"
        assert (
            run_cli(
                "run", str(path), "--store", str(s1), "--collect-workers", "1"
            ).returncode
            == 0
        )
        assert (
            run_cli(
                "run", str(path), "--store", str(s2), "--collect-workers", "2"
            ).returncode
            == 0
        )
        a, b = json.loads(s1.read_text()), json.loads(s2.read_text())
        assert a["columns"] == b["columns"]
        assert "collect_workers" not in a["meta"]["fingerprint"]

    def test_rejects_bad_collect_workers(self, scenario_file):
        result = run_cli("run", str(scenario_file), "--collect-workers", "0")
        assert result.returncode == 2  # argparse usage error
        assert "positive integer" in result.stderr

    def test_rejects_collect_workers_plus_chunk_size(self, scenario_file):
        result = run_cli(
            "run", str(scenario_file), "--collect-workers", "2", "--chunk-size", "64"
        )
        assert result.returncode == 1
        assert "mutually exclusive" in result.stderr


class TestProgressOutput:
    def test_run_reports_completed_over_total_units(self, scenario_file, tmp_path):
        result = run_cli("run", str(scenario_file), "--store", str(tmp_path / "a.json"))
        assert result.returncode == 0, result.stderr
        # 2 epsilons x 2 attacks x 2 schemes = 8 units; the final unit is
        # always reported regardless of throttling
        assert "8/8 work units completed" in result.stderr

    def test_quiet_silences_progress(self, scenario_file, tmp_path):
        result = run_cli(
            "run", str(scenario_file), "--store", str(tmp_path / "a.json"), "--quiet"
        )
        assert result.returncode == 0, result.stderr
        assert "work units" not in result.stderr


class TestResume:
    def test_resume_requires_artifact(self, scenario_file, tmp_path):
        result = run_cli(
            "resume", str(scenario_file), "--store", str(tmp_path / "missing.json")
        )
        assert result.returncode == 1
        assert "no run artifact" in result.stderr

    def test_resume_reuses_completed_run(self, scenario_file, tmp_path):
        store = tmp_path / "artifact.json"
        assert run_cli("run", str(scenario_file), "--store", str(store)).returncode == 0
        before = json.loads(store.read_text())
        result = run_cli("resume", str(scenario_file), "--store", str(store), "--quiet")
        assert result.returncode == 0, result.stderr
        assert json.loads(store.read_text())["columns"] == before["columns"]


class TestListComponents:
    def test_lists_every_registry_group(self):
        result = run_cli("list-components")
        assert result.returncode == 0, result.stderr
        for token in (
            "mechanisms:",
            "attacks:",
            "defenses:",
            "schemes:",
            "datasets:",
            "piecewise",
            "bba",
            "Trimming",
            "DAP-CEMF*",
            "Taxi",
        ):
            assert token in result.stdout, token


class TestExampleScenario:
    def test_shipped_example_is_valid(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        scenario = ScenarioSpec.from_file(
            os.path.join(root, "examples", "scenario_matrix.json")
        )
        spec = scenario.to_experiment_spec()
        assert len(spec.points) == 9  # 3 attacks x 3 epsilons
        assert len(spec.schemes_for(spec.points[0])) == 4

    def test_shipped_shuffle_example_is_valid(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        scenario = ScenarioSpec.from_file(
            os.path.join(root, "examples", "scenario_shuffle.json")
        )
        assert scenario.protocol == "shuffle"
        spec = scenario.to_experiment_spec()
        assert spec.protocol == "shuffle"
        assert len(spec.points) == 4  # 2 attacks x 2 epsilons
        for scheme in spec.schemes_for(spec.points[0]):
            assert scheme.config.protocol == "shuffle"


DAP_SCENARIO = {
    "name": "dappy",
    "population": {"n_users": 600, "gamma": 0.25},
    "trials": 2,
    "seed": 5,
    "epsilons": [1.0],
    "datasets": ["Uniform"],
    "attacks": [{"name": "bba", "poison_range": "[C/2,C]"}],
    "schemes": ["DAP-CEMF*"],
}


class TestProbeStrategy:
    def test_flag_recorded_and_statistically_equivalent(self, tmp_path):
        path = tmp_path / "dappy.json"
        path.write_text(json.dumps(DAP_SCENARIO))
        stores = {}
        for strategy in ("batched", "cold"):
            store = tmp_path / f"{strategy}.json"
            result = run_cli(
                "run", str(path), "--quiet", "--probe-strategy", strategy,
                "--store", str(store),
            )
            assert result.returncode == 0, result.stderr
            stores[strategy] = load_run(store)
        for strategy, artifact in stores.items():
            assert artifact.meta["execution"]["probe_strategy"] == strategy
        # the strategies evaluate the same hypotheses; only iterate-level
        # floating point may differ
        for cold_row, batched_row in zip(
            stores["cold"].records, stores["batched"].records
        ):
            assert batched_row.mse == pytest.approx(cold_row.mse, rel=1e-6)

    def test_strategy_is_an_execution_detail_for_resume(self, tmp_path):
        path = tmp_path / "dappy.json"
        path.write_text(json.dumps(DAP_SCENARIO))
        store = tmp_path / "artifact.json"
        result = run_cli("run", str(path), "--quiet", "--store", str(store))
        assert result.returncode == 0, result.stderr
        before = load_run(store)
        # resuming a complete artifact under the other strategy must reuse
        # every record verbatim (the knob is not part of the fingerprint)
        result = run_cli(
            "resume", str(path), "--quiet", "--probe-strategy", "cold",
            "--store", str(store),
        )
        assert result.returncode == 0, result.stderr
        after = load_run(store)
        assert [
            (r.point, r.scheme, r.mse, r.bias) for r in after.records
        ] == [(r.point, r.scheme, r.mse, r.bias) for r in before.records]

    def test_rejects_unknown_strategy(self, scenario_file):
        result = run_cli("run", str(scenario_file), "--probe-strategy", "warm")
        assert result.returncode == 2
        assert "--probe-strategy" in result.stderr


class TestBackend:
    def test_flag_recorded_as_execution_detail(self, scenario_file, tmp_path):
        store = tmp_path / "artifact.json"
        result = run_cli(
            "run", str(scenario_file), "--quiet", "--backend", "fast",
            "--store", str(store),
        )
        assert result.returncode == 0, result.stderr
        artifact = load_run(store)
        assert artifact.meta["execution"]["backend"] == "fast"
        assert "backend" not in artifact.meta["fingerprint"]

    def test_numpy_backend_matches_default_bit_for_bit(self, scenario_file, tmp_path):
        """The numpy backend *is* the reference: selecting it explicitly must
        not change a single record."""
        default, numpy_store = tmp_path / "default.json", tmp_path / "numpy.json"
        assert (
            run_cli(
                "run", str(scenario_file), "--quiet", "--store", str(default)
            ).returncode
            == 0
        )
        assert (
            run_cli(
                "run", str(scenario_file), "--quiet", "--backend", "numpy",
                "--store", str(numpy_store),
            ).returncode
            == 0
        )
        a, b = json.loads(default.read_text()), json.loads(numpy_store.read_text())
        assert a["columns"] == b["columns"]

    def test_backend_is_an_execution_detail_for_resume(self, scenario_file, tmp_path):
        store = tmp_path / "artifact.json"
        assert (
            run_cli("run", str(scenario_file), "--quiet", "--store", str(store))
            .returncode
            == 0
        )
        before = load_run(store)
        # a complete artifact resumed under another backend reuses every
        # record verbatim (the knob is not part of the fingerprint)
        result = run_cli(
            "resume", str(scenario_file), "--quiet", "--backend", "fast",
            "--store", str(store),
        )
        assert result.returncode == 0, result.stderr
        after = load_run(store)
        assert [
            (r.point, r.scheme, r.mse, r.bias) for r in after.records
        ] == [(r.point, r.scheme, r.mse, r.bias) for r in before.records]
        assert after.meta["execution"]["backend"] == "fast"

    def test_partial_resume_under_different_backend_warns(
        self, scenario_file, tmp_path
    ):
        store = tmp_path / "artifact.json"
        assert (
            run_cli("run", str(scenario_file), "--quiet", "--store", str(store))
            .returncode
            == 0
        )
        payload = json.loads(store.read_text())
        kept = [
            i for i, s in enumerate(payload["columns"]["scheme"]) if s == "Ostrich"
        ]
        payload["columns"] = {
            key: [column[i] for i in kept]
            for key, column in payload["columns"].items()
        }
        store.write_text(json.dumps(payload))
        result = run_cli(
            "resume", str(scenario_file), "--quiet", "--backend", "fast",
            "--store", str(store),
        )
        assert result.returncode == 0, result.stderr
        assert "partial artifact" in result.stderr

    def test_numba_backend_falls_back_with_warning(self, scenario_file, tmp_path):
        """Without numba installed the run must still succeed, warning once
        and recording the requested knob."""
        try:
            import numba  # noqa: F401
        except ImportError:
            pass
        else:
            pytest.skip("numba is installed; the fallback path never fires")
        store = tmp_path / "artifact.json"
        result = run_cli(
            "run", str(scenario_file), "--quiet", "--backend", "numba",
            "--store", str(store),
        )
        assert result.returncode == 0, result.stderr
        assert "numba is not installed" in result.stderr
        assert load_run(store).meta["execution"]["backend"] == "numba"

    def test_rejects_unknown_backend(self, scenario_file):
        result = run_cli("run", str(scenario_file), "--backend", "gpu")
        assert result.returncode == 2
        assert "--backend" in result.stderr


class TestProfile:
    def test_profile_recorded_in_artifact_and_printed(self, scenario_file, tmp_path):
        store = tmp_path / "artifact.json"
        result = run_cli(
            "run", str(scenario_file), "--quiet", "--profile", "--store", str(store)
        )
        assert result.returncode == 0, result.stderr
        assert "profile:" in result.stderr
        profile = load_run(store).meta["execution"]["profile"]
        # Ostrich/Trimming rounds have a collection and a defense stage
        assert set(profile) >= {"collect", "defense"}
        assert all(seconds >= 0.0 for seconds in profile.values())

    def test_profile_covers_probe_and_aggregate_for_dap(self, tmp_path):
        path = tmp_path / "dappy.json"
        path.write_text(json.dumps(DAP_SCENARIO))
        store = tmp_path / "artifact.json"
        result = run_cli(
            "run", str(path), "--quiet", "--profile", "--store", str(store)
        )
        assert result.returncode == 0, result.stderr
        profile = load_run(store).meta["execution"]["profile"]
        assert set(profile) >= {"collect", "probe", "aggregate"}

    def test_profile_splits_collect_into_sub_timers(self, scenario_file, tmp_path):
        store = tmp_path / "artifact.json"
        result = run_cli(
            "run", str(scenario_file), "--quiet", "--profile", "--store", str(store)
        )
        assert result.returncode == 0, result.stderr
        profile = load_run(store).meta["execution"]["profile"]
        assert {"collect", "collect.sample", "collect.poison"} <= set(profile)
        # the sub-timers nest *inside* collect: they attribute its total,
        # never add to it
        assert (
            profile["collect.sample"] + profile["collect.poison"]
            <= profile["collect"] + 1e-6
        )

    def test_streaming_profile_covers_accumulation(self, tmp_path):
        scenario = dict(DAP_SCENARIO, name="dap_stream")
        path = tmp_path / "dap_stream.json"
        path.write_text(json.dumps(scenario))
        store = tmp_path / "artifact.json"
        result = run_cli(
            "run", str(path), "--quiet", "--profile", "--chunk-size", "128",
            "--store", str(store),
        )
        assert result.returncode == 0, result.stderr
        profile = load_run(store).meta["execution"]["profile"]
        assert {
            "collect", "collect.sample", "collect.poison", "collect.accumulate"
        } <= set(profile)

    def test_no_profile_key_without_flag(self, scenario_file, tmp_path):
        store = tmp_path / "artifact.json"
        result = run_cli("run", str(scenario_file), "--quiet", "--store", str(store))
        assert result.returncode == 0, result.stderr
        assert "profile" not in load_run(store).meta["execution"]

    def test_profile_out_writes_json_and_implies_profile(
        self, scenario_file, tmp_path
    ):
        store = tmp_path / "artifact.json"
        out = tmp_path / "nested" / "profile.json"
        result = run_cli(
            "run", str(scenario_file), "--quiet", "--store", str(store),
            "--profile-out", str(out),
        )
        assert result.returncode == 0, result.stderr
        assert "profile:" in result.stderr  # --profile-out implies --profile
        written = json.loads(out.read_text())
        assert written == load_run(store).meta["execution"]["profile"]
        assert set(written) >= {"collect", "defense"}

    def test_profile_out_on_resume(self, scenario_file, tmp_path):
        store = tmp_path / "artifact.json"
        out = tmp_path / "profile.json"
        assert (
            run_cli(
                "run", str(scenario_file), "--quiet", "--store", str(store)
            ).returncode
            == 0
        )
        result = run_cli(
            "resume", str(scenario_file), "--quiet", "--store", str(store),
            "--profile-out", str(out),
        )
        assert result.returncode == 0, result.stderr
        # everything was already computed: an empty-but-valid profile document
        assert json.loads(out.read_text()) == {}
