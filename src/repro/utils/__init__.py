"""Shared utilities: RNG handling, validation, discretisation and histograms.

These helpers are intentionally small and dependency-free (NumPy only); every
other subpackage builds on them.
"""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_in_interval,
    check_positive,
    check_probability_vector,
)
from repro.utils.discretization import BucketGrid, bucketize, bucket_centers
from repro.utils.histogram import (
    histogram_counts,
    normalize_histogram,
    histogram_mean,
    histogram_variance,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_fraction",
    "check_in_interval",
    "check_positive",
    "check_probability_vector",
    "BucketGrid",
    "bucketize",
    "bucket_centers",
    "histogram_counts",
    "normalize_histogram",
    "histogram_mean",
    "histogram_variance",
]
