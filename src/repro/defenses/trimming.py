"""Trimming baseline from robust statistics.

The collector removes the largest (or smallest, for a left-side attack)
fraction of reports before averaging.  The paper uses a 50 % trim on the
poisoned side as its Trimming baseline and discusses its drawbacks in the
introduction: the threshold is hard to set, it is a single point of failure if
leaked, and it discards genuine tail reports from normal users, biasing the
estimate.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Defense, DefenseResult
from repro.ldp.base import NumericalMechanism
from repro.registry import DEFENSES
from repro.utils.rng import RngLike
from repro.utils.validation import check_fraction


@DEFENSES.register("Trimming")
class TrimmingDefense(Defense):
    """Drop a fraction of extreme reports on the (assumed) poisoned side.

    Parameters
    ----------
    trim_fraction:
        Fraction of reports to remove (0.5 in the paper's experiments).
    side:
        ``"right"`` removes the largest reports, ``"left"`` the smallest,
        ``"both"`` removes ``trim_fraction / 2`` from each tail.
    """

    name = "Trimming"

    def __init__(self, trim_fraction: float = 0.5, side: str = "right") -> None:
        self.trim_fraction = check_fraction(trim_fraction, "trim_fraction")
        if side not in ("left", "right", "both"):
            raise ValueError(f"side must be 'left', 'right' or 'both', got {side!r}")
        self.side = side

    def estimate_mean(
        self,
        reports: np.ndarray,
        mechanism: NumericalMechanism,
        rng: RngLike = None,
    ) -> DefenseResult:
        reports = self._validate_reports(reports)
        n = reports.size
        keep = np.ones(n, dtype=bool)
        order = np.argsort(reports)

        if self.side == "right":
            n_trim = int(np.floor(n * self.trim_fraction))
            if n_trim:
                keep[order[-n_trim:]] = False
        elif self.side == "left":
            n_trim = int(np.floor(n * self.trim_fraction))
            if n_trim:
                keep[order[:n_trim]] = False
        else:  # both tails
            n_trim = int(np.floor(n * self.trim_fraction / 2.0))
            if n_trim:
                keep[order[:n_trim]] = False
                keep[order[-n_trim:]] = False

        kept = reports[keep]
        if kept.size == 0:  # degenerate trim fraction of 1.0
            kept = reports
            keep = np.ones(n, dtype=bool)
        estimate = mechanism.estimate_mean(kept)
        low, high = mechanism.input_domain
        estimate = float(np.clip(estimate, low, high))
        return DefenseResult(
            estimate=estimate,
            kept_mask=keep,
            metadata={"n_trimmed": int(n - keep.sum()), "side": self.side},
        )


__all__ = ["TrimmingDefense"]
