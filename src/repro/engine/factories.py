"""Picklable point -> component factories shared by the figure drivers.

The parallel executor ships the whole :class:`~repro.engine.spec.ExperimentSpec`
to worker processes, so factories must survive pickling — which rules out the
lambdas the legacy drivers used.  These small frozen dataclasses cover the
common shapes; drivers with figure-specific logic define their own factory
classes at module level in the same style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from repro.attacks import BiasedByzantineAttack, PAPER_POISON_RANGES
from repro.attacks.base import Attack
from repro.datasets.base import NumericalDataset
from repro.ldp.piecewise import PiecewiseMechanism
from repro.simulation.schemes import MechanismFactory, Scheme, make_scheme


@dataclass(frozen=True)
class SchemesByName:
    """Build the named paper schemes at the point's ``epsilon``."""

    schemes: Tuple[str, ...]
    epsilon_min: float = 1.0 / 16.0
    epsilon_key: str = "epsilon"
    mechanism_factory: MechanismFactory = PiecewiseMechanism

    def __call__(self, point: Mapping) -> Sequence[Scheme]:
        epsilon = float(point[self.epsilon_key])
        return [
            make_scheme(
                name,
                epsilon=epsilon,
                epsilon_min=self.epsilon_min,
                mechanism_factory=self.mechanism_factory,
            )
            for name in self.schemes
        ]


@dataclass(frozen=True)
class FixedEpsilonSchemes:
    """Build the named paper schemes at one fixed ``epsilon``."""

    schemes: Tuple[str, ...]
    epsilon: float
    epsilon_min: float = 1.0 / 16.0
    mechanism_factory: MechanismFactory = PiecewiseMechanism

    def __call__(self, point: Mapping) -> Sequence[Scheme]:
        return [
            make_scheme(
                name,
                epsilon=self.epsilon,
                epsilon_min=self.epsilon_min,
                mechanism_factory=self.mechanism_factory,
            )
            for name in self.schemes
        ]


@dataclass(frozen=True)
class PoisonRangeAttack:
    """A Biased Byzantine Attack on the point's named poison range."""

    range_key: str = "poison_range"
    side: str = "right"

    def __call__(self, point: Mapping) -> Attack:
        return BiasedByzantineAttack(
            PAPER_POISON_RANGES[point[self.range_key]], side=self.side
        )


@dataclass(frozen=True)
class FixedAttack:
    """The same attack instance at every point (attacks are stateless)."""

    attack: Attack | None

    def __call__(self, point: Mapping) -> Attack | None:
        return self.attack


@dataclass(frozen=True)
class DatasetLookup:
    """Serve pre-loaded datasets keyed by the point's dataset name."""

    datasets: Mapping[str, NumericalDataset]
    dataset_key: str = "dataset"

    def __call__(self, point: Mapping) -> NumericalDataset:
        return self.datasets[point[self.dataset_key]]


@dataclass(frozen=True)
class FixedDataset:
    """The same dataset at every point."""

    dataset: NumericalDataset

    def __call__(self, point: Mapping) -> NumericalDataset:
        return self.dataset


@dataclass(frozen=True)
class PointKey:
    """Read a per-point scalar (e.g. a swept ``gamma``) from the point."""

    key: str

    def __call__(self, point: Mapping) -> float:
        return point[self.key]


__all__ = [
    "SchemesByName",
    "FixedEpsilonSchemes",
    "PoisonRangeAttack",
    "FixedAttack",
    "DatasetLookup",
    "FixedDataset",
    "PointKey",
]
