"""Baseline defences the paper compares DAP against.

* :class:`~repro.defenses.ostrich.OstrichDefense` — no defence: average every
  report and ignore the attackers (the paper's "Ostrich" baseline).
* :class:`~repro.defenses.trimming.TrimmingDefense` — robust-statistics
  trimming: drop the largest (or smallest) fraction of reports before
  averaging.
* :class:`~repro.defenses.kmeans.KMeansDefense` — the sampling + 2-means
  defence of Li et al., compared against in Figure 9.
* :class:`~repro.defenses.boxplot.BoxplotDefense` — classic IQR outlier
  removal (Section III-A).
* :class:`~repro.defenses.isolation_forest.IsolationForestDefense` — isolation
  forest outlier removal (Section III-A), implemented from scratch.
"""

from repro.defenses.base import Defense, DefenseResult
from repro.defenses.ostrich import OstrichDefense
from repro.defenses.trimming import TrimmingDefense
from repro.defenses.kmeans import KMeansDefense, kmeans_1d
from repro.defenses.boxplot import BoxplotDefense
from repro.defenses.isolation_forest import IsolationForestDefense, IsolationForest

__all__ = [
    "Defense",
    "DefenseResult",
    "OstrichDefense",
    "TrimmingDefense",
    "KMeansDefense",
    "kmeans_1d",
    "BoxplotDefense",
    "IsolationForestDefense",
    "IsolationForest",
]
