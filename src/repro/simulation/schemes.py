"""Estimation schemes: a uniform interface over DAP variants and baselines.

Every scheme exposes ``estimate(population, attack, rng) -> float`` so the
trial runner and the figure drivers can treat DAP-EMF, DAP-EMF*, DAP-CEMF*,
Ostrich, Trimming, the k-means defence, and any other defence interchangeably
— exactly the set of curves the paper plots.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.attacks.base import Attack, NoAttack
from repro.core.baseline_protocol import BaselineProtocol
from repro.core.dap import DAPConfig, DAPProtocol
from repro.defenses.base import Defense
from repro.defenses.boxplot import BoxplotDefense
from repro.defenses.isolation_forest import IsolationForestDefense
from repro.defenses.kmeans import KMeansDefense
from repro.defenses.ostrich import OstrichDefense
from repro.defenses.trimming import TrimmingDefense
from repro.ldp.base import NumericalMechanism
from repro.ldp.piecewise import PiecewiseMechanism
from repro.simulation.population import Population
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs

MechanismFactory = Callable[[float], NumericalMechanism]


class Scheme(abc.ABC):
    """A named mean-estimation scheme evaluated by the harness."""

    name: str = "scheme"

    @abc.abstractmethod
    def estimate(
        self, population: Population, attack: Attack | None, rng: RngLike = None
    ) -> float:
        """Run one collection round and return the mean estimate."""

    def estimate_batch(
        self,
        populations: "Sequence[Population]",
        attack: Attack | None,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Estimate a stack of trial populations, one estimate per trial.

        The default implementation spawns one child stream per trial and runs
        :meth:`estimate` in a loop; schemes whose collection round is a single
        vectorisable mechanism call override this to perturb all trials at
        once (see :meth:`SingleRoundScheme.estimate_batch`).
        """
        rngs = spawn_rngs(ensure_rng(rng), len(populations))
        return np.array(
            [
                float(self.estimate(population, attack, rng=trial_rng))
                for population, trial_rng in zip(populations, rngs)
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class DAPScheme(Scheme):
    """One of the three DAP variants (EMF / EMF* / CEMF*)."""

    def __init__(self, config: DAPConfig, name: str | None = None) -> None:
        self.config = config
        self.protocol = DAPProtocol(config)
        suffix = {"emf": "EMF", "emf_star": "EMF*", "cemf_star": "CEMF*"}[config.estimator]
        self.name = name or f"DAP-{suffix}"

    def estimate(
        self, population: Population, attack: Attack | None, rng: RngLike = None
    ) -> float:
        result = self.protocol.run(
            population.normal_values,
            attack or NoAttack(),
            population.n_byzantine,
            rng=rng,
        )
        return result.estimate


class SingleRoundScheme(Scheme):
    """A classical defence applied to one full-budget collection round.

    Normal users perturb once with the whole budget; Byzantine users submit
    one poison report each; the wrapped :class:`~repro.defenses.base.Defense`
    turns the mixed reports into an estimate.  This is how the paper runs the
    Ostrich / Trimming / k-means baselines.
    """

    def __init__(
        self,
        defense: Defense,
        epsilon: float,
        mechanism_factory: MechanismFactory = PiecewiseMechanism,
        name: str | None = None,
    ) -> None:
        self.defense = defense
        self.mechanism = mechanism_factory(epsilon)
        self.name = name or defense.name

    def estimate(
        self, population: Population, attack: Attack | None, rng: RngLike = None
    ) -> float:
        rng = ensure_rng(rng)
        attack = attack or NoAttack()
        normal_reports = self.mechanism.perturb(population.normal_values, rng)
        poison_reports = attack.poison_reports(
            population.n_byzantine, self.mechanism, 0.0, rng
        ).reports
        reports = np.concatenate([normal_reports, poison_reports])
        return self.defense.estimate_mean(reports, self.mechanism, rng).estimate

    def estimate_batch(
        self,
        populations: Sequence[Population],
        attack: Attack | None,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Batched collection: one ``perturb`` call for all trials.

        All trials' normal values are stacked into a single array and
        perturbed in one mechanism call, and all trials' poison reports are
        drawn in one attack call, instead of one call per trial.  The reports
        are then split back per trial and fed to the defence.
        """
        rng = ensure_rng(rng)
        attack = attack or NoAttack()

        normal_sizes = np.array([p.n_normal for p in populations])
        stacked = np.concatenate([p.normal_values for p in populations])
        normal_reports = np.split(
            self.mechanism.perturb(stacked, rng), np.cumsum(normal_sizes)[:-1]
        )

        byzantine_sizes = np.array([p.n_byzantine for p in populations])
        total_byzantine = int(byzantine_sizes.sum())
        poison_all = (
            attack.poison_reports(total_byzantine, self.mechanism, 0.0, rng).reports
            if total_byzantine
            else np.empty(0)
        )
        poison_reports = np.split(poison_all, np.cumsum(byzantine_sizes)[:-1])

        estimates = np.empty(len(populations))
        for index, (normal, poison) in enumerate(zip(normal_reports, poison_reports)):
            reports = np.concatenate([normal, poison])
            estimates[index] = self.defense.estimate_mean(
                reports, self.mechanism, rng
            ).estimate
        return estimates


class BaselineProtocolScheme(Scheme):
    """The Section IV two-budget baseline protocol as a scheme."""

    def __init__(
        self,
        epsilon: float,
        alpha_fraction: float = 0.1,
        evade_probing: bool = False,
        mechanism_factory: MechanismFactory = PiecewiseMechanism,
        name: str | None = None,
    ) -> None:
        self.protocol = BaselineProtocol(
            epsilon, alpha_fraction=alpha_fraction, mechanism_factory=mechanism_factory
        )
        self.evade_probing = evade_probing
        self.name = name or ("Baseline(evaded)" if evade_probing else "Baseline")

    def estimate(
        self, population: Population, attack: Attack | None, rng: RngLike = None
    ) -> float:
        result = self.protocol.run(
            population.normal_values,
            attack or NoAttack(),
            population.n_byzantine,
            evade_probing=self.evade_probing,
            rng=rng,
        )
        return result.estimate


#: scheme names used throughout the paper's mean-estimation figures
PAPER_SCHEMES = ("DAP-EMF", "DAP-EMF*", "DAP-CEMF*", "Ostrich", "Trimming")


def make_scheme(
    name: str,
    epsilon: float,
    epsilon_min: float = 1.0 / 16.0,
    mechanism_factory: MechanismFactory = PiecewiseMechanism,
    label: str | None = None,
    **kwargs,
) -> Scheme:
    """Instantiate a scheme by its paper name.

    Supported names (case-insensitive): ``DAP-EMF``, ``DAP-EMF*``,
    ``DAP-CEMF*``, ``Ostrich``, ``Trimming``, ``K-means``, ``Boxplot``,
    ``IsolationForest``, ``Baseline``.  Extra keyword arguments are forwarded
    to the underlying constructor (e.g. ``sampling_rate`` for ``K-means``);
    ``label`` overrides the display name (useful when the same scheme appears
    with several parameterisations, e.g. ``K-means(beta=0.3)``).
    """
    scheme = _make_scheme(name, epsilon, epsilon_min, mechanism_factory, **kwargs)
    if label is not None:
        scheme.name = label
    return scheme


def _make_scheme(
    name: str,
    epsilon: float,
    epsilon_min: float,
    mechanism_factory: MechanismFactory,
    **kwargs,
) -> Scheme:
    key = name.strip().lower()
    dap_estimators: Dict[str, str] = {
        "dap-emf": "emf",
        "dap-emf*": "emf_star",
        "dap-cemf*": "cemf_star",
    }
    if key in dap_estimators:
        config = DAPConfig(
            epsilon=epsilon,
            epsilon_min=epsilon_min,
            estimator=dap_estimators[key],
            mechanism_factory=mechanism_factory,
            **kwargs,
        )
        return DAPScheme(config, name=name)
    if key == "ostrich":
        return SingleRoundScheme(
            OstrichDefense(**kwargs), epsilon, mechanism_factory, name=name
        )
    if key == "trimming":
        return SingleRoundScheme(
            TrimmingDefense(**kwargs), epsilon, mechanism_factory, name=name
        )
    if key in ("k-means", "kmeans"):
        return SingleRoundScheme(
            KMeansDefense(**kwargs), epsilon, mechanism_factory, name=name
        )
    if key == "boxplot":
        return SingleRoundScheme(
            BoxplotDefense(**kwargs), epsilon, mechanism_factory, name=name
        )
    if key in ("isolationforest", "isolation-forest"):
        return SingleRoundScheme(
            IsolationForestDefense(**kwargs), epsilon, mechanism_factory, name=name
        )
    if key == "baseline":
        return BaselineProtocolScheme(epsilon, mechanism_factory=mechanism_factory, **kwargs)
    raise KeyError(f"unknown scheme {name!r}")


__all__ = [
    "Scheme",
    "DAPScheme",
    "SingleRoundScheme",
    "BaselineProtocolScheme",
    "make_scheme",
    "PAPER_SCHEMES",
]

# keep the private dispatcher out of star-imports but documented for readers
_make_scheme.__doc__ = "Internal dispatcher behind :func:`make_scheme`."
