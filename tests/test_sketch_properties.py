"""Hypothesis property tests for the count-sketch collection path.

The sketch route inherits the collection contracts the rest of the collector
relies on — merge order/shard/chunk invariance, value-preserving snapshots —
plus its own decode invariants.  These are the properties that make sharded
and windowed sketch collection *exactly* equal to one-shot collection, which
is what the bit-identity gates in the benchmark assert at scale.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collect import SketchAccumulator, chunk_array
from repro.ldp.count_sketch import CountSketch, sketch_row_seeds

COMMON_SETTINGS = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _reports(rng: np.random.Generator, n: int, rows: int, width: int) -> np.ndarray:
    """Synthetic (row, bucket) report pairs."""
    return np.column_stack(
        [
            rng.integers(0, rows, size=n).astype(np.int64),
            rng.integers(0, width, size=n).astype(np.int64),
        ]
    )


class TestSketchAccumulator:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(0, 400),
        rows=st.integers(1, 5),
        width=st.integers(2, 64),
        n_chunks=st.integers(1, 7),
    )
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_chunk_count_invariance(self, seed, n, rows, width, n_chunks):
        """Folding a stream in any number of chunks equals the one-shot fold."""
        rng = np.random.default_rng(seed)
        reports = _reports(rng, n, rows, width)
        one_shot = SketchAccumulator(rows, width).update(reports)
        chunked = SketchAccumulator(rows, width)
        for chunk in chunk_array(reports, max(1, n // n_chunks)):
            chunked.update(chunk)
        np.testing.assert_array_equal(one_shot.counts, chunked.counts)

    @given(
        seed=st.integers(0, 2**32 - 1),
        sizes=st.lists(st.integers(0, 120), min_size=2, max_size=6),
        rows=st.integers(1, 4),
        width=st.integers(2, 32),
        order_seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_merge_order_and_shard_count_invariance(
        self, seed, sizes, rows, width, order_seed
    ):
        """Merging shard accumulators in any order, and over any shard split,
        equals the one-shot fold of the concatenated stream."""
        rng = np.random.default_rng(seed)
        shards = [_reports(rng, size, rows, width) for size in sizes]
        full = np.vstack(shards) if shards else np.empty((0, 2), dtype=np.int64)
        one_shot = SketchAccumulator(rows, width).update(full)

        accumulators = [
            SketchAccumulator(rows, width).update(shard) for shard in shards
        ]
        order = np.random.default_rng(order_seed).permutation(len(accumulators))
        merged = SketchAccumulator(rows, width)
        for index in order:
            merged.merge(accumulators[index])
        np.testing.assert_array_equal(one_shot.counts, merged.counts)

    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(0, 300),
        rows=st.integers(1, 4),
        width=st.integers(2, 48),
    )
    @settings(max_examples=60, **COMMON_SETTINGS)
    def test_state_dict_round_trip_bit_identity(self, seed, n, rows, width):
        """A snapshot restores to a bit-identical accumulator that keeps
        accumulating exactly like the original."""
        rng = np.random.default_rng(seed)
        original = SketchAccumulator(rows, width).update(
            _reports(rng, n, rows, width)
        )
        restored = SketchAccumulator.from_state(original.state_dict())
        np.testing.assert_array_equal(original.counts, restored.counts)
        assert restored.counts.dtype == original.counts.dtype
        more = _reports(rng, 50, rows, width)
        np.testing.assert_array_equal(
            original.update(more).counts, restored.update(more).counts
        )


class TestSketchDecode:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(50, 500),
        k=st.integers(4, 200),
        rows=st.integers(1, 4),
        width=st.integers(4, 64),
        n_chunks=st.integers(1, 5),
    )
    @settings(max_examples=40, **COMMON_SETTINGS)
    def test_decode_matches_streaming_sketch(
        self, seed, n, k, rows, width, n_chunks
    ):
        """Decoding from a streamed/merged accumulator is bit-identical to
        decoding from the one-shot fold of the same reports."""
        rng = np.random.default_rng(seed)
        mech = CountSketch(1.0, k, sketch_rows=rows, sketch_width=width)
        reports = mech.perturb(rng.integers(0, k, size=n), rng)
        direct = mech.estimate_all(mech.fold(reports))

        streamed = SketchAccumulator(rows, width)
        for chunk in chunk_array(reports, max(1, n // n_chunks)):
            streamed.update(chunk)
        np.testing.assert_array_equal(direct, mech.estimate_all(streamed.counts))

    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(50, 400),
        k=st.integers(4, 100),
        width=st.integers(4, 64),
    )
    @settings(max_examples=40, **COMMON_SETTINGS)
    def test_reduce_statistics_ordering(self, seed, n, k, width):
        """Across rows, min <= median <= max implies the debiased reduces
        obey min <= median for every category, and all reduces agree at
        one row."""
        rng = np.random.default_rng(seed)
        mech = CountSketch(1.0, k, sketch_rows=3, sketch_width=width)
        counts = mech.fold(mech.perturb(rng.integers(0, k, size=n), rng))
        cats = np.arange(k)
        mean = mech.estimate_categories(counts, cats, reduce="mean")
        median = mech.estimate_categories(counts, cats, reduce="median")
        low = mech.estimate_categories(counts, cats, reduce="min")
        assert np.all(low <= median + 1e-12)
        assert np.all(low <= mean + 1e-12)

        one_row = CountSketch(1.0, k, sketch_rows=1, sketch_width=width)
        counts1 = one_row.fold(one_row.perturb(rng.integers(0, k, size=n), rng))
        np.testing.assert_array_equal(
            one_row.estimate_categories(counts1, cats, reduce="mean"),
            one_row.estimate_categories(counts1, cats, reduce="median"),
        )
        np.testing.assert_array_equal(
            one_row.estimate_categories(counts1, cats, reduce="mean"),
            one_row.estimate_categories(counts1, cats, reduce="min"),
        )

    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(100, 500),
        k=st.integers(8, 120),
    )
    @settings(max_examples=30, **COMMON_SETTINGS)
    def test_decode_mass_is_approximately_normalised(self, seed, n, k):
        """The mean decode is unbiased, so the domain total concentrates
        around one (loose bound: this is a property test, not a CI gate)."""
        rng = np.random.default_rng(seed)
        mech = CountSketch(4.0, k, sketch_rows=2, sketch_width=32)
        counts = mech.fold(mech.perturb(rng.integers(0, k, size=n), rng))
        total = float(mech.estimate_all(counts).sum())
        assert abs(total - 1.0) < 1.5


class TestRowSeeds:
    @given(n_rows=st.integers(1, 64))
    @settings(max_examples=20, **COMMON_SETTINGS)
    def test_row_seeds_deterministic_prefix(self, n_rows):
        """Row seeds are a fixed sequence: a wider sketch extends, never
        reshuffles, the rows — the property that lets different parties
        agree on the hash family."""
        seeds = sketch_row_seeds(n_rows)
        assert seeds.size == n_rows
        assert np.unique(seeds).size == n_rows
        longer = sketch_row_seeds(n_rows + 3)
        np.testing.assert_array_equal(seeds, longer[:n_rows])
