"""Parallel experiment executor.

Runs an :class:`~repro.engine.spec.ExperimentSpec` either serially or fanned
out over a ``concurrent.futures`` process pool.  Determinism contract:

1. The master generator is consumed exactly once, up front, to draw the
   ``(n_points, n_trials)`` seed matrix — in the same stream order the legacy
   serial ``sweep`` drew its per-point trial seeds.
2. Every work unit (a ``(point, scheme)`` pair, or a whole point for
   point-granular specs) derives all of its randomness from its row of the
   seed matrix.
3. Results are gathered back into canonical unit order.

Together these make the output bit-identical for any worker count, including
the serial fallback, and — for ``batched=False`` specs — bit-identical to the
legacy :func:`repro.simulation.sweep.sweep` path.

Workers are forked (or spawned) with the spec shipped once via the pool
initializer; each worker then owns a process-local transform cache
(:mod:`repro.utils.transform_cache`), so caches warm up independently without
any cross-process coordination.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Callable, Dict, List, Sequence

#: progress callback signature: ``(completed_units, total_units)``
ProgressCallback = Callable[[int, int], None]

import numpy as np

from repro.engine.spec import ExperimentSpec, Unit
from repro.engine.store import load_run, save_run
from repro.resilience import stats
from repro.resilience.faults import active_injector
from repro.resilience.pool import (
    ResilientPool,
    reset_degradation_latch,
    retry_call,
)
from repro.simulation.sweep import SweepRecord
from repro.utils import profiling
from repro.utils.rng import RngLike, ensure_rng

#: sentinel accepted by ``n_workers`` to use every available CPU
AUTO_WORKERS = "auto"

#: the :class:`~repro.resilience.pool.ResilientPool` seam name for work-unit
#: dispatch — fault plans target experiment units through this scope
UNIT_POOL_LABEL = "engine.unit"

# worker-process state installed once by the pool initializer
_WORKER_SPEC: ExperimentSpec | None = None
_WORKER_SEEDS: np.ndarray | None = None


def resolve_workers(n_workers: int | str | None) -> int:
    """Normalise the ``n_workers`` argument to an effective worker count."""
    if n_workers is None:
        return 1
    if n_workers == AUTO_WORKERS:
        return max(1, os.cpu_count() or 1)
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return n_workers


def draw_seed_matrix(rng: np.random.Generator, n_points: int, n_trials: int) -> np.ndarray:
    """Pre-draw the per-(point, trial) seed matrix from the master stream.

    A single ``(n_points, n_trials)`` draw consumes the PCG64 stream in the
    same order as ``n_points`` successive length-``n_trials`` draws, which is
    exactly what the legacy serial sweep did — so pre-drawing preserves
    bit-identical seeds while decoupling the points from each other.
    """
    return rng.integers(0, 2**63 - 1, size=(n_points, n_trials), dtype=np.int64)


def _init_worker(spec: ExperimentSpec, seed_matrix: np.ndarray) -> None:
    global _WORKER_SPEC, _WORKER_SEEDS
    _WORKER_SPEC = spec
    _WORKER_SEEDS = seed_matrix


def _run_unit(
    unit: Unit,
) -> tuple[Unit, List[Any], Dict[str, float], Dict[str, int]]:
    assert _WORKER_SPEC is not None and _WORKER_SEEDS is not None
    before = profiling.snapshot()
    resilience_before = stats.snapshot()
    records = _WORKER_SPEC.evaluate_unit(unit, _WORKER_SEEDS[unit[0]])
    # stage wall times and recovery events accumulate per process; shipping
    # each unit's delta back with its records makes pool runs profile — and
    # count nested shard-pool recoveries — like serial ones
    return (
        unit,
        records,
        profiling.delta_since(before),
        stats.delta_since(resilience_before),
    )


def _report(
    progress: ProgressCallback | None, completed: int, total: int
) -> None:
    if progress is not None:
        progress(completed, total)


def _run_units(
    spec: ExperimentSpec,
    units: Sequence[Unit],
    seed_matrix: np.ndarray,
    n_workers: int,
    progress: ProgressCallback | None = None,
    done: int = 0,
    total: int | None = None,
) -> tuple[Dict[Unit, List[Any]], Dict[str, float], Dict[str, int]]:
    """Run work units through the resilient pool harness (seam ``engine.unit``).

    Serial and pooled execution, retries, pool reincarnation and the serial
    degradation path all land here; the serial worker evaluates the spec
    in-process because only pool workers carry the initializer-installed
    globals.
    """
    total = len(units) if total is None else total
    results: Dict[Unit, List[Any]] = {}
    profile: Dict[str, float] = {}
    worker_resilience: Dict[str, int] = {}
    completed = {"count": done}

    def serial_worker(unit: Unit):
        before = profiling.snapshot()
        records = spec.evaluate_unit(unit, seed_matrix[unit[0]])
        return unit, records, profiling.delta_since(before), {}

    def on_result(_index: int, payload) -> None:
        unit, records, unit_profile, unit_resilience = payload
        results[unit] = records
        profiling.merge_profiles(profile, unit_profile)
        stats.merge(worker_resilience, unit_resilience)
        completed["count"] += 1
        _report(progress, completed["count"], total)

    pool = ResilientPool(
        n_workers,
        UNIT_POOL_LABEL,
        initializer=_init_worker,
        initargs=(spec, seed_matrix),
    )
    pool.run(
        _run_unit,
        units,
        pickle_probe=spec,
        serial_worker=serial_worker,
        on_result=on_result,
    )
    return results, profile, worker_resilience


def run_experiment(
    spec: ExperimentSpec,
    rng: RngLike = None,
    n_workers: int | str | None = None,
    store_path: str | os.PathLike | None = None,
    resume: bool = True,
    progress: ProgressCallback | None = None,
    profile: bool = False,
) -> List[Any]:
    """Execute a spec and return its result records in canonical order.

    Parameters
    ----------
    spec:
        The experiment to run.
    rng:
        Master seed / generator; defaults to ``spec.seed``.  Consumed only
        for the up-front seed-matrix draw.
    n_workers:
        ``None`` / ``1`` for in-process execution, an integer for a process
        pool of that size, or ``"auto"`` for one worker per CPU.  The result
        is identical in every case.
    store_path:
        Optional JSON artifact path.  When given, completed units found in an
        existing artifact with a matching spec fingerprint are reused
        (``resume=True``) and the merged result is written back.
    resume:
        Set ``False`` to ignore any existing artifact and recompute.
    progress:
        Optional ``(completed_units, total_units)`` callback invoked after
        every finished work unit (units restored from an artifact are
        reported up front), for long-run progress output.
    profile:
        Record the per-stage wall times of the freshly computed units
        (collect / probe / aggregate / defense, summed over all workers —
        see :mod:`repro.utils.profiling`) under ``meta.execution.profile``
        of the run artifact.  Units restored from an existing artifact cost
        no stage time, so they contribute nothing.
    """
    reset_degradation_latch()
    resilience_before = stats.snapshot()
    master = ensure_rng(rng if rng is not None else spec.seed)
    seed_matrix = draw_seed_matrix(master, len(spec.points), spec.n_trials)
    units = spec.units()

    completed: Dict[Unit, List[Any]] = {}
    if store_path is not None and resume and os.path.exists(store_path):
        completed = _load_completed_units(spec, store_path, units)

    pending = [unit for unit in units if unit not in completed]
    done = len(completed)
    if done:
        _report(progress, done, len(units))
    n_workers = resolve_workers(n_workers)
    if n_workers > 1 and len(pending) > 1:
        collect_workers = getattr(spec, "collect_workers", None)
        if collect_workers and collect_workers > 1:
            warnings.warn(
                f"n_workers={n_workers} and collect_workers="
                f"{collect_workers} compose multiplicatively: every work "
                f"unit's collection rounds spawn their own shard pool, up "
                f"to {n_workers * collect_workers} concurrent processes — "
                f"prefer one knob unless the machine has cores for both",
                RuntimeWarning,
                stacklevel=2,
            )
    fresh, run_profile, worker_resilience = _run_units(
        spec, pending, seed_matrix, n_workers, progress, done, len(units)
    )

    records: List[Any] = []
    for unit in units:
        records.extend(completed.get(unit) or fresh[unit])
    if store_path is not None:
        _store_records(
            spec,
            store_path,
            records,
            units,
            profile=run_profile if profile else None,
            resilience_before=resilience_before,
            worker_resilience=worker_resilience,
        )
    return records


# ----------------------------------------------------------------------
# store integration (SweepRecord sweeps only)
# ----------------------------------------------------------------------
def _storable(spec: ExperimentSpec, records: Sequence[Any]) -> bool:
    return not spec.is_point_granular() and all(
        isinstance(record, SweepRecord) for record in records
    )


def _load_completed_units(
    spec: ExperimentSpec, store_path, units: Sequence[Unit]
) -> Dict[Unit, List[Any]]:
    """Map stored records back onto this spec's units (best effort)."""
    if spec.is_point_granular():
        return {}
    try:
        artifact = load_run(store_path)
    except (ValueError, KeyError, OSError) as error:
        warnings.warn(
            f"ignoring unreadable run artifact {store_path!s}: {error}",
            RuntimeWarning,
            stacklevel=3,
        )
        return {}
    stored_fingerprint = dict(artifact.meta.get("fingerprint") or {})
    # artifacts written before chunk_size became an execution detail folded
    # it into the fingerprint; strip it so those runs stay resumable
    legacy_chunk_size = stored_fingerprint.pop("chunk_size", None)
    if stored_fingerprint != spec.fingerprint():
        return {}
    # artifacts written before execution provenance existed identify their
    # collection path through that legacy fingerprint key (collect_workers
    # did not exist yet, so None is exact); knobs added later are normalised
    # with .get() so older artifacts compare as "default", and non-knob
    # provenance (e.g. profile timings) never participates.  Only the
    # *collection* knobs matter here: they change which randomness stream
    # computes the pending units, whereas probe_strategy changes solver
    # arithmetic only and consumes no randomness, so it never warrants the
    # warning.  The backend is a collection knob too — the fast backends'
    # samplers consume the RNG stream differently from the reference.
    stored_raw = artifact.meta.get("execution") or {
        "chunk_size": legacy_chunk_size,
    }
    collection_knobs = ("chunk_size", "collect_workers", "backend")
    details = _execution_details(spec)
    current_execution = {key: details[key] for key in collection_knobs}
    stored_execution = {key: stored_raw.get(key) for key in collection_knobs}
    if (
        stored_execution != current_execution
        and len(artifact.rows) < len(units)
    ):
        # execution knobs never gate reuse (completed records are served
        # verbatim), but a *partial* artifact's remaining units will now be
        # computed under a different collection path, whose randomness
        # stream differs for the same seeds — statistically equivalent, yet
        # the records are no longer reproducible from one configuration
        warnings.warn(
            f"resuming a partial artifact ({len(artifact.rows)} stored rows) "
            f"recorded under execution settings {stored_execution}, but the "
            f"pending units will run under {current_execution}; "
            f"completed records are reused verbatim while the remaining ones "
            f"use the new path's randomness (statistically equivalent draws)",
            RuntimeWarning,
            stacklevel=3,
        )
    by_key: Dict[tuple, SweepRecord] = {
        (record.point_index, record.record.scheme): record.record
        for record in artifact.rows
    }
    completed: Dict[Unit, List[Any]] = {}
    for point_index, scheme_index in units:
        scheme = spec.schemes_for(spec.points[point_index])[scheme_index]
        stored = by_key.get((point_index, scheme.name))
        if stored is not None:
            completed[(point_index, scheme_index)] = [stored]
    return completed


def _execution_details(spec: ExperimentSpec) -> dict:
    """The execution knobs recorded in artifacts for provenance.

    Informational only — never compared for record reuse (that is the
    fingerprint's job); used to warn when a partial artifact is resumed
    under a different collection path.  Under the shuffle protocol the
    details also carry a privacy-amplification digest: the Feldman et al.
    local→central bound evaluated at every swept epsilon with the full
    population size (an optimistic per-run summary — the exact per-group
    ledger, with the actual report counts, rides on each
    :class:`~repro.core.dap.DAPResult`).
    """
    details = {
        "chunk_size": spec.chunk_size,
        "collect_workers": spec.collect_workers,
        "probe_strategy": getattr(spec, "probe_strategy", None),
        "backend": getattr(spec, "backend", None),
        "protocol": getattr(spec, "protocol", None),
    }
    if details["protocol"] == "shuffle":
        from repro.protocol.amplification import DEFAULT_DELTA, amplified_epsilon

        epsilons = sorted(
            {
                float(point["epsilon"])
                for point in spec.points
                if isinstance(point.get("epsilon"), (int, float))
            }
        )
        details["amplification"] = {
            "delta": DEFAULT_DELTA,
            "n": int(spec.n_users),
            "epsilon_central": {
                f"{epsilon:g}": amplified_epsilon(epsilon, int(spec.n_users))
                for epsilon in epsilons
            },
        }
    return details


def _store_records(
    spec: ExperimentSpec,
    store_path,
    records: Sequence[Any],
    units: Sequence[Unit],
    profile: Dict[str, float] | None = None,
    resilience_before: Dict[str, int] | None = None,
    worker_resilience: Dict[str, int] | None = None,
) -> None:
    if not _storable(spec, records):
        return
    point_indices = [unit[0] for unit in units]
    execution = _execution_details(spec)
    if profile is not None:
        execution["profile"] = {
            name: round(seconds, 6) for name, seconds in sorted(profile.items())
        }
    injector = active_injector()
    if injector is not None:
        execution["fault_plan"] = injector.plan.document()

    def write() -> None:
        # the resilience delta is recomputed per attempt so a retried write
        # records its own retry in the artifact it finally lands
        if resilience_before is not None:
            resilience = stats.delta_since(resilience_before)
            stats.merge(resilience, worker_resilience or {})
            execution["resilience"] = {
                event: count for event, count in sorted(resilience.items())
            }
        save_run(
            store_path,
            records,
            point_indices=point_indices,
            meta={
                "fingerprint": spec.fingerprint(),
                "description": spec.description,
                "execution": execution,
            },
        )

    # a transient write failure must not lose a finished run: the atomic
    # temp-file replacement makes the retry idempotent
    retry_call(write, label="engine.store", event="artifact_write_retries")


__all__ = [
    "AUTO_WORKERS",
    "UNIT_POOL_LABEL",
    "ProgressCallback",
    "draw_seed_matrix",
    "resolve_workers",
    "run_experiment",
]
