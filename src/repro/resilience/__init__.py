"""Fault-tolerant execution layer: retrying pools, fault injection, stats.

Public surface:

- :class:`ResilientPool` / :class:`RetryPolicy` — the shared self-healing
  dispatch harness every compute seam runs on (engine work units, collection
  shards, service windows).
- :class:`FaultPlan` / :func:`use_fault_plan` — deterministic fault
  injection for chaos tests and benchmarks.
- :mod:`repro.resilience.stats` — process-local recovery-event counters
  surfaced under ``meta.execution.resilience``.

Everything here is an *execution detail*: it changes how hard a run works,
never what it computes.  Recovered runs are bit-identical to fault-free runs.
"""

from repro.resilience import stats
from repro.resilience.faults import (
    CORRUPTION_MODES,
    FAULT_KINDS,
    Fault,
    FaultInjector,
    FaultPlan,
    POOL_FAULT_KINDS,
    active_injector,
    corrupt_file,
    use_fault_plan,
)
from repro.resilience.pool import (
    DEFAULT_POLICY,
    InjectedFault,
    KILL_EXIT_CODE,
    ResilientPool,
    RetryPolicy,
    TaskFailedError,
    active_policy,
    reset_degradation_latch,
    retry_call,
    use_retry_policy,
)

__all__ = [
    "CORRUPTION_MODES",
    "DEFAULT_POLICY",
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "KILL_EXIT_CODE",
    "POOL_FAULT_KINDS",
    "ResilientPool",
    "RetryPolicy",
    "TaskFailedError",
    "active_injector",
    "active_policy",
    "corrupt_file",
    "reset_degradation_latch",
    "retry_call",
    "stats",
    "use_fault_plan",
    "use_retry_policy",
]
