"""Tests for the GBA -> BBA reduction (Theorem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.reduction import (
    equivalent_bba_reports,
    reduce_gba_to_bba,
    total_deviation,
)

DOMAIN = (-5.0, 5.0)


class TestTotalDeviation:
    def test_simple(self):
        assert total_deviation(np.array([1.0, 2.0, 3.0]), 1.0) == pytest.approx(3.0)

    def test_empty(self):
        assert total_deviation(np.array([]), 0.0) == 0.0


class TestEquivalentBBA:
    def test_preserves_deviation(self):
        reports = np.array([-3.0, 2.0, 4.0, -1.0])
        reduced = equivalent_bba_reports(reports, 0.0, *DOMAIN)
        assert total_deviation(reduced, 0.0) == pytest.approx(total_deviation(reports, 0.0))

    def test_one_sided(self):
        reports = np.array([-3.0, 2.0, 4.0, -1.0])  # net +2
        reduced = equivalent_bba_reports(reports, 0.0, *DOMAIN)
        assert np.all(reduced >= 0.0)

    def test_negative_net_goes_left(self):
        reports = np.array([-4.0, 1.0])
        reduced = equivalent_bba_reports(reports, 0.0, *DOMAIN)
        assert np.all(reduced <= 0.0)

    def test_zero_deviation_is_empty(self):
        assert equivalent_bba_reports(np.array([-1.0, 1.0]), 0.0, *DOMAIN).size == 0

    def test_values_inside_domain(self):
        reports = np.full(10, 4.9)
        reduced = equivalent_bba_reports(reports, 0.0, *DOMAIN)
        assert reduced.max() <= DOMAIN[1] + 1e-9

    def test_degenerate_reference_raises(self):
        # positive net deviation but no room on the right of the reference mean
        with pytest.raises(ValueError):
            equivalent_bba_reports(np.array([6.0]), 5.0, -5.0, 5.0)


class TestReduceGbaToBba:
    def test_preserves_deviation_exactly(self):
        reports = np.array([-3.0, -0.5, 2.0, 4.0, -1.0, 0.25])
        reduced = reduce_gba_to_bba(reports, 0.0, *DOMAIN)
        assert total_deviation(reduced, 0.0) == pytest.approx(
            total_deviation(reports, 0.0), abs=1e-9
        )

    def test_result_is_one_sided(self):
        reports = np.array([-3.0, -0.5, 2.0, 4.0, -1.0, 0.25])  # net positive
        reduced = reduce_gba_to_bba(reports, 0.0, *DOMAIN)
        assert np.all(reduced >= -1e-9)

    def test_net_negative_attack_reduces_to_left(self):
        reports = np.array([-4.0, -3.0, 1.0, 0.5])
        reduced = reduce_gba_to_bba(reports, 0.0, *DOMAIN)
        assert np.all(reduced <= 1e-9)

    def test_already_one_sided_unchanged_in_total(self):
        reports = np.array([1.0, 2.0, 3.0])
        reduced = reduce_gba_to_bba(reports, 0.0, *DOMAIN)
        assert total_deviation(reduced, 0.0) == pytest.approx(6.0)
        assert reduced.size == 3

    def test_empty_input(self):
        assert reduce_gba_to_bba(np.array([]), 0.0, *DOMAIN).size == 0

    def test_values_stay_in_domain(self):
        rng = np.random.default_rng(0)
        reports = rng.uniform(-5, 5, 200)
        reduced = reduce_gba_to_bba(reports, 0.0, *DOMAIN)
        assert reduced.min() >= DOMAIN[0] - 1e-9
        assert reduced.max() <= DOMAIN[1] + 1e-9

    def test_nonzero_reference_mean(self):
        reports = np.array([-2.0, 1.0, 3.0])
        reference = 0.5
        reduced = reduce_gba_to_bba(reports, reference, *DOMAIN)
        assert total_deviation(reduced, reference) == pytest.approx(
            total_deviation(reports, reference), abs=1e-9
        )
        # one-sided relative to the reference mean
        assert np.all(reduced >= reference - 1e-9) or np.all(reduced <= reference + 1e-9)


class TestPropertyBased:
    @given(
        reports=st.lists(st.floats(-5, 5, allow_nan=False), min_size=1, max_size=40),
        reference=st.floats(-2, 2, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_reduction_invariant_and_one_sided(self, reports, reference):
        reports = np.array(reports)
        reduced = reduce_gba_to_bba(reports, reference, *DOMAIN)
        assert total_deviation(reduced, reference) == pytest.approx(
            total_deviation(reports, reference), abs=1e-6
        )
        above = np.any(reduced > reference + 1e-9)
        below = np.any(reduced < reference - 1e-9)
        assert not (above and below)
