"""Tests for the attack strategies (GBA, BBA, IMA, evasion) and poison ranges."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import (
    BetaPoison,
    BiasedByzantineAttack,
    EvasionAttack,
    GaussianPoison,
    GeneralByzantineAttack,
    InputManipulationAttack,
    NoAttack,
    PAPER_POISON_RANGES,
    PointMassPoison,
    PoisonRange,
    UniformPoison,
)
from repro.attacks.base import AttackReport
from repro.ldp import PiecewiseMechanism


@pytest.fixture
def mech():
    return PiecewiseMechanism(1.0)


class TestPoisonRange:
    def test_of_c_resolution(self, mech):
        low, high = PoisonRange.of_c(0.5, 1.0).resolve(mech, 0.0, "right")
        assert low == pytest.approx(mech.C / 2)
        assert high == pytest.approx(mech.C)

    def test_from_mean_resolution(self, mech):
        low, high = PoisonRange.from_mean_to_c(0.5).resolve(mech, 0.1, "right")
        assert low == pytest.approx(0.1)
        assert high == pytest.approx(mech.C / 2)

    def test_left_side_mirrors(self, mech):
        right = PoisonRange.of_c(0.5, 1.0).resolve(mech, 0.0, "right")
        left = PoisonRange.of_c(0.5, 1.0).resolve(mech, 0.0, "left")
        assert left == (pytest.approx(-right[1]), pytest.approx(-right[0]))

    def test_affine_constructor(self, mech):
        low, high = PoisonRange.affine(0.5, 0.5, 1.0).resolve(mech, 0.0, "right")
        assert low == pytest.approx(0.5 * mech.C + 0.5)
        assert high == pytest.approx(mech.C)

    def test_absolute_constructor(self, mech):
        low, high = PoisonRange.absolute(1.0, 2.0).resolve(mech, 0.0, "right")
        assert (low, high) == (1.0, 2.0)

    def test_clipped_to_domain(self, mech):
        low, high = PoisonRange.absolute(-100.0, 100.0).resolve(mech, 0.0, "right")
        assert low == pytest.approx(-mech.C)
        assert high == pytest.approx(mech.C)

    def test_empty_range_raises(self, mech):
        with pytest.raises(ValueError):
            PoisonRange.absolute(5.0, 4.0).resolve(mech, 0.0, "right")

    def test_invalid_side(self, mech):
        with pytest.raises(ValueError):
            PoisonRange.of_c(0.5, 1.0).resolve(mech, 0.0, "up")

    def test_paper_ranges_all_resolve(self, mech):
        for poison_range in PAPER_POISON_RANGES.values():
            low, high = poison_range.resolve(mech, 0.0, "right")
            assert low <= high


class TestPoisonDistributions:
    def test_uniform_within_range(self, rng):
        samples = UniformPoison().sample(1_000, 2.0, 3.0, rng)
        assert samples.min() >= 2.0 and samples.max() <= 3.0

    def test_gaussian_clipped_to_range(self, rng):
        samples = GaussianPoison(relative_std=2.0).sample(1_000, 0.0, 1.0, rng)
        assert samples.min() >= 0.0 and samples.max() <= 1.0

    def test_beta_skew_directions(self, rng):
        low_heavy = BetaPoison(1, 6).sample(5_000, 0.0, 1.0, rng).mean()
        high_heavy = BetaPoison(6, 1).sample(5_000, 0.0, 1.0, rng).mean()
        assert low_heavy < 0.3 < 0.7 < high_heavy

    def test_point_mass(self, rng):
        samples = PointMassPoison(1.0).sample(10, 0.0, 2.0, rng)
        np.testing.assert_allclose(samples, 2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BetaPoison(0, 1)
        with pytest.raises(ValueError):
            PointMassPoison(1.5)


class TestAttackReport:
    def test_count(self):
        report = AttackReport(reports=np.array([1.0, 2.0]))
        assert report.n == 2

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            AttackReport(reports=np.array([1.0]), poisoned_side="up")


class TestNoAttack:
    def test_empty_reports(self, mech, rng):
        report = NoAttack().poison_reports(100, mech, 0.0, rng)
        assert report.n == 0

    def test_declares_zero_poison_reports(self):
        # the streaming/sharded collectors size accumulators from this
        assert NoAttack().n_poison_reports(100) == 0

    def test_real_attacks_declare_one_report_per_user(self):
        attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])
        assert attack.n_poison_reports(123) == 123


class TestBBA:
    def test_reports_in_resolved_range(self, mech, rng):
        attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])
        report = attack.poison_reports(2_000, mech, 0.0, rng)
        low, high = attack.resolved_range(mech, 0.0)
        assert report.reports.min() >= low - 1e-9
        assert report.reports.max() <= high + 1e-9
        assert report.poisoned_side == "right"

    def test_left_side_attack(self, mech, rng):
        attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"], side="left")
        report = attack.poison_reports(500, mech, 0.0, rng)
        assert report.reports.max() <= -mech.C / 2 + 1e-9

    def test_zero_byzantine(self, mech, rng):
        assert BiasedByzantineAttack().poison_reports(0, mech, 0.0, rng).n == 0

    def test_count_matches(self, mech, rng):
        assert BiasedByzantineAttack().poison_reports(123, mech, 0.0, rng).n == 123

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            BiasedByzantineAttack(side="middle")


class TestGBA:
    def test_reports_within_output_domain(self, mech, rng):
        attack = GeneralByzantineAttack(right_fraction=0.6)
        report = attack.poison_reports(2_000, mech, 0.0, rng)
        assert report.reports.min() >= -mech.C - 1e-9
        assert report.reports.max() <= mech.C + 1e-9
        assert report.poisoned_side == "both"

    def test_pure_right_is_right_sided(self, mech, rng):
        report = GeneralByzantineAttack(1.0).poison_reports(100, mech, 0.0, rng)
        assert report.poisoned_side == "right"
        assert report.reports.min() >= 0.0

    def test_pure_left(self, mech, rng):
        report = GeneralByzantineAttack(0.0).poison_reports(100, mech, 0.0, rng)
        assert report.poisoned_side == "left"
        assert report.reports.max() <= 0.0

    def test_split_counts(self, mech, rng):
        report = GeneralByzantineAttack(0.25).poison_reports(1_000, mech, 0.0, rng)
        n_right = np.count_nonzero(report.reports >= 0.0)
        assert n_right == 250


class TestIMA:
    def test_reports_look_like_perturbed_values(self, mech, rng):
        report = InputManipulationAttack(1.0).poison_reports(5_000, mech, 0.0, rng)
        # IMA reports live in the PM output domain and average near g = 1
        assert report.reports.min() >= -mech.C - 1e-9
        assert report.reports.max() <= mech.C + 1e-9
        assert report.reports.mean() == pytest.approx(1.0, abs=0.15)

    def test_side_follows_poison_input(self, mech, rng):
        assert InputManipulationAttack(-1.0).poison_reports(10, mech, 0.0, rng).poisoned_side == "left"
        assert InputManipulationAttack(0.5).poison_reports(10, mech, 0.0, rng).poisoned_side == "right"

    def test_invalid_poison_input(self):
        with pytest.raises(ValueError):
            InputManipulationAttack(2.0)


class TestEvasion:
    def test_split_between_true_and_evasive(self, mech, rng):
        attack = EvasionAttack(evasive_fraction=0.3)
        report = attack.poison_reports(1_000, mech, 0.0, rng)
        n_evasive = np.count_nonzero(report.reports < 0)
        assert n_evasive == 300
        # evasive values sit at -C/2
        np.testing.assert_allclose(
            report.reports[report.reports < 0], -mech.C / 2, atol=1e-9
        )

    def test_zero_fraction_is_plain_bba(self, mech, rng):
        report = EvasionAttack(0.0).poison_reports(500, mech, 0.0, rng)
        assert report.reports.min() >= mech.C / 2 - 1e-9

    def test_full_fraction_all_evasive(self, mech, rng):
        report = EvasionAttack(1.0).poison_reports(500, mech, 0.0, rng)
        assert report.reports.max() <= 0.0

    def test_utility_loss_bound_monotone_in_a(self, mech):
        low = EvasionAttack(0.1).utility_loss_bound(100, 300, mech, 0.0)
        high = EvasionAttack(0.4).utility_loss_bound(100, 300, mech, 0.0)
        assert 0 < low < high

    def test_utility_loss_zero_population(self, mech):
        assert EvasionAttack(0.2).utility_loss_bound(0, 0, mech) == 0.0


class TestPropertyBased:
    @given(
        n=st.integers(0, 200),
        epsilon=st.floats(0.2, 3.0),
        fraction=st.floats(0, 1),
        seed=st.integers(0, 9999),
    )
    @settings(max_examples=40, deadline=None)
    def test_gba_reports_always_in_domain(self, n, epsilon, fraction, seed):
        mech = PiecewiseMechanism(epsilon)
        report = GeneralByzantineAttack(fraction).poison_reports(n, mech, 0.0, seed)
        assert report.n == n
        if n:
            assert report.reports.min() >= -mech.C - 1e-9
            assert report.reports.max() <= mech.C + 1e-9

    @given(
        n=st.integers(1, 200),
        epsilon=st.floats(0.2, 3.0),
        a=st.floats(0, 1),
        seed=st.integers(0, 9999),
    )
    @settings(max_examples=40, deadline=None)
    def test_evasion_counts_add_up(self, n, epsilon, a, seed):
        mech = PiecewiseMechanism(epsilon)
        report = EvasionAttack(a).poison_reports(n, mech, 0.0, seed)
        assert report.n == n
