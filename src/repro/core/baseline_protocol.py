"""The baseline two-budget protocol (Section IV).

Every user splits her budget into ``epsilon_alpha + epsilon_beta = epsilon``
(with ``epsilon_alpha << epsilon_beta``) and perturbs her value twice.  The
collector probes the Byzantine features on the noisy-but-cheap ``alpha``
reports (where Theorem 3 makes EMF most accurate) and then estimates the mean
from the ``beta`` reports after removing the attackers' collective
contribution (Equation 12).

The protocol's known flaw — attackers can behave honestly on the ``alpha``
round and poison only the ``beta`` round because the two budgets are fixed and
public — is modelled by the ``evade_probing`` flag of :meth:`BaselineProtocol.run`;
the DAP protocol (Section V) exists precisely to close that hole.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.attacks.base import Attack, NoAttack
from repro.core.features import ByzantineFeatures, estimate_byzantine_features
from repro.core.mean_estimation import corrected_mean
from repro.core.probing import check_probe_strategy
from repro.ldp.base import NumericalMechanism
from repro.ldp.piecewise import PiecewiseMechanism
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction, check_positive

MechanismFactory = Callable[[float], NumericalMechanism]


@dataclass
class BaselineResult:
    """Outcome of one baseline-protocol run.

    Attributes
    ----------
    estimate:
        The corrected mean estimate of the normal users.
    features:
        Byzantine features probed from the alpha reports.
    alpha_reports, beta_reports:
        The two collected report sets (useful for diagnostics and tests).
    """

    estimate: float
    features: ByzantineFeatures
    alpha_reports: np.ndarray
    beta_reports: np.ndarray


class BaselineProtocol:
    """Two-budget probing + estimation protocol (Section IV).

    Parameters
    ----------
    epsilon:
        Total per-user privacy budget.
    alpha_fraction:
        Fraction of the budget spent on the probing round
        (``epsilon_alpha = alpha_fraction * epsilon``); the paper requires
        ``epsilon_alpha << epsilon_beta`` so the default is 0.1.
    mechanism_factory:
        Callable mapping a budget to a numerical mechanism (PM by default).
    probe_strategy:
        Side-hypothesis evaluation strategy for the probing round (see
        :func:`repro.core.probing.probe_poisoned_side`).
    """

    def __init__(
        self,
        epsilon: float,
        alpha_fraction: float = 0.1,
        mechanism_factory: MechanismFactory = PiecewiseMechanism,
        probe_strategy: str = "batched",
    ) -> None:
        self.epsilon = check_positive(epsilon, "epsilon")
        self.alpha_fraction = check_fraction(alpha_fraction, "alpha_fraction", inclusive=False)
        self.mechanism_factory = mechanism_factory
        self.probe_strategy = check_probe_strategy(probe_strategy)
        self.epsilon_alpha = self.alpha_fraction * self.epsilon
        self.epsilon_beta = self.epsilon - self.epsilon_alpha
        self.mechanism_alpha = mechanism_factory(self.epsilon_alpha)
        self.mechanism_beta = mechanism_factory(self.epsilon_beta)

    def run(
        self,
        normal_values: np.ndarray,
        attack: Attack | None = None,
        n_byzantine: int = 0,
        reference_mean: float | None = None,
        evade_probing: bool = False,
        rng: RngLike = None,
    ) -> BaselineResult:
        """Simulate one collection round and return the defended estimate.

        Parameters
        ----------
        normal_values:
            Normal users' original values (in the mechanism's input domain).
        attack:
            Attack strategy of the Byzantine users (defaults to no attack).
        n_byzantine:
            Number of Byzantine users.
        reference_mean:
            The collector's ``O'`` (defaults to the output-domain centre).
        evade_probing:
            When True, Byzantine users behave like normal users (reporting the
            input-domain poisoned extreme honestly perturbed) on the alpha
            round and only poison the beta round — the attack that motivates
            DAP.
        rng:
            Randomness source.
        """
        rng = ensure_rng(rng)
        attack = attack or NoAttack()
        normal_values = np.asarray(normal_values, dtype=float)

        # --- users perturb twice -------------------------------------------------
        alpha_normal = self.mechanism_alpha.perturb(normal_values, rng)
        beta_normal = self.mechanism_beta.perturb(normal_values, rng)

        if evade_probing:
            # attackers mimic an honest user holding the extreme input value
            # during the probing round
            disguised_inputs = np.full(n_byzantine, self.mechanism_alpha.input_domain[1])
            alpha_poison = (
                self.mechanism_alpha.perturb(disguised_inputs, rng)
                if n_byzantine
                else np.empty(0)
            )
        else:
            alpha_poison = attack.poison_reports(
                n_byzantine, self.mechanism_alpha, reference_mean or 0.0, rng
            ).reports
        beta_poison = attack.poison_reports(
            n_byzantine, self.mechanism_beta, reference_mean or 0.0, rng
        ).reports

        alpha_reports = np.concatenate([alpha_normal, alpha_poison])
        beta_reports = np.concatenate([beta_normal, beta_poison])

        # --- collector: probe on alpha, estimate on beta -------------------------
        features = estimate_byzantine_features(
            self.mechanism_alpha,
            alpha_reports,
            reference_mean=reference_mean,
            epsilon=self.epsilon_alpha,
            strategy=self.probe_strategy,
        )
        estimate = corrected_mean(
            beta_reports,
            gamma_hat=features.gamma_hat,
            poison_mean=self._rescale_poison_mean(features),
            input_domain=self.mechanism_beta.input_domain,
        )
        return BaselineResult(
            estimate=estimate,
            features=features,
            alpha_reports=alpha_reports,
            beta_reports=beta_reports,
        )

    def _rescale_poison_mean(self, features: ByzantineFeatures) -> float:
        """Map the probed poison mean from the alpha domain to the beta domain.

        The paper assumes the two rounds form a unified attack with the same
        deviation, i.e. ``M_alpha = M_beta``.  When the attacker scales poison
        values to each round's output domain (the strongest strategy), the
        natural invariant is the *relative* position inside the poisoned half
        of the domain, so the probed mean is rescaled proportionally from
        ``[O', C_alpha]`` onto ``[O', C_beta]`` (mirrored for left-side
        attacks) and finally clipped into the beta domain.
        """
        reference = features.emf.transform.reference_mean
        if features.side == "right":
            alpha_bound = self.mechanism_alpha.output_domain[1]
            beta_bound = self.mechanism_beta.output_domain[1]
        else:
            alpha_bound = self.mechanism_alpha.output_domain[0]
            beta_bound = self.mechanism_beta.output_domain[0]
        alpha_reach = alpha_bound - reference
        if abs(alpha_reach) < 1e-12:
            rescaled = features.poison_mean
        else:
            relative = (features.poison_mean - reference) / alpha_reach
            rescaled = reference + relative * (beta_bound - reference)
        low, high = self.mechanism_beta.output_domain
        return float(np.clip(rescaled, low, high))


__all__ = ["BaselineProtocol", "BaselineResult"]
