"""Columnar, JSON-persistable run artifacts.

A run artifact captures one executed sweep: the spec fingerprint, the sweep
points, and the measurements laid out column-wise (one array per field) so
downstream tooling — the benchmark harness, notebooks, the examples — can
load a run without re-running it, and an interrupted sweep can resume from
the units already on disk.

Format (``repro.engine.run/v1``)::

    {
      "format": "repro.engine.run/v1",
      "meta":    {...},                      # fingerprint + free-form info
      "points":  {"0": {...}, "1": {...}},   # point_index -> sweep point
      "columns": {
        "point_index": [...], "scheme": [...],
        "mse": [...], "bias": [...], "n_trials": [...]
      }
    }
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence

import numpy as np

from repro.simulation.sweep import SweepRecord

FORMAT = "repro.engine.run/v1"

#: the measurement columns of a sweep record
RECORD_COLUMNS = ("point_index", "scheme", "mse", "bias", "n_trials")


def _json_value(value: Any) -> Any:
    """Coerce numpy scalars (and tuples) into JSON-representable values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_json_value(item) for item in value]
    return value


@dataclass(frozen=True)
class StoredRecord:
    """One measurement row tied back to its sweep-point index."""

    point_index: int
    record: SweepRecord


@dataclass
class RunArtifact:
    """A loaded run: provenance metadata plus the measurement rows."""

    meta: Dict[str, Any]
    rows: List[StoredRecord]

    @property
    def records(self) -> List[SweepRecord]:
        """The measurements, in stored order."""
        return [row.record for row in self.rows]


def records_to_columns(
    records: Sequence[SweepRecord], point_indices: Sequence[int]
) -> tuple[Dict[str, Dict[str, Any]], Dict[str, List[Any]]]:
    """Lay sweep records out column-wise; returns ``(points, columns)``."""
    if len(records) != len(point_indices):
        raise ValueError(
            f"{len(records)} records but {len(point_indices)} point indices"
        )
    points: Dict[str, Dict[str, Any]] = {}
    columns: Dict[str, List[Any]] = {name: [] for name in RECORD_COLUMNS}
    for record, point_index in zip(records, point_indices):
        key = str(int(point_index))
        points.setdefault(
            key, {name: _json_value(value) for name, value in record.point.items()}
        )
        columns["point_index"].append(int(point_index))
        columns["scheme"].append(record.scheme)
        columns["mse"].append(float(record.mse))
        columns["bias"].append(float(record.bias))
        columns["n_trials"].append(int(record.n_trials))
    return points, columns


def columns_to_records(
    points: Mapping[str, Mapping[str, Any]], columns: Mapping[str, Sequence[Any]]
) -> List[StoredRecord]:
    """Inverse of :func:`records_to_columns`."""
    missing = [name for name in RECORD_COLUMNS if name not in columns]
    if missing:
        raise KeyError(f"run artifact is missing columns {missing}")
    lengths = {name: len(columns[name]) for name in RECORD_COLUMNS}
    if len(set(lengths.values())) > 1:
        raise ValueError(f"ragged run artifact columns: {lengths}")
    rows: List[StoredRecord] = []
    for index in range(lengths["point_index"]):
        point_index = int(columns["point_index"][index])
        point = dict(points.get(str(point_index), {}))
        rows.append(
            StoredRecord(
                point_index=point_index,
                record=SweepRecord(
                    point=point,
                    scheme=str(columns["scheme"][index]),
                    mse=float(columns["mse"][index]),
                    bias=float(columns["bias"][index]),
                    n_trials=int(columns["n_trials"][index]),
                ),
            )
        )
    return rows


def save_run(
    path: str | os.PathLike,
    records: Sequence[SweepRecord],
    point_indices: Sequence[int],
    meta: Mapping[str, Any] | None = None,
) -> None:
    """Write a run artifact atomically and durably.

    Same discipline as the service checkpoints: serialise to a temp file in
    the destination directory, fsync it, then ``os.replace`` over the final
    path — a crash or kill at any instant leaves either the previous artifact
    or the new one, never a torn file.  A pending ``artifact-write`` fault in
    the active plan fails the call (before any file is touched) with an
    ``OSError``, exercising the callers' retry path.
    """
    from repro.resilience.faults import active_injector

    injector = active_injector()
    if injector is not None and injector.take_artifact_write_fault():
        raise OSError("injected artifact write failure")
    points, columns = records_to_columns(records, point_indices)
    payload = {
        "format": FORMAT,
        "meta": dict(meta or {}),
        "points": points,
        "columns": columns,
    }
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def load_run(path: str | os.PathLike) -> RunArtifact:
    """Load a run artifact written by :func:`save_run`."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"{os.fspath(path)!s} is not a {FORMAT} artifact "
            f"(format={payload.get('format')!r})"
        )
    rows = columns_to_records(payload.get("points", {}), payload["columns"])
    return RunArtifact(meta=dict(payload.get("meta", {})), rows=rows)


__all__ = [
    "FORMAT",
    "RECORD_COLUMNS",
    "StoredRecord",
    "RunArtifact",
    "records_to_columns",
    "columns_to_records",
    "save_run",
    "load_run",
]
