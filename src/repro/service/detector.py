"""Sequential change detection on the probe statistics.

The service feeds the detector one number per window: the *marginal*
Byzantine proportion — the probe-group poison mass attributed to the newest
window alone (cumulative ``gamma_hat`` differences, rescaled by report
counts).  Under no attack that statistic hovers around the probe's
reconstruction noise; when an attack switches on mid-stream it jumps to the
attacker's true ``gamma`` immediately, while the *cumulative* ``gamma_hat``
only drifts up at rate ``1/w``.  Detecting on the marginal statistic is what
turns "flagged within k windows" from a promise about averages into one
about individual windows.

The detector is a one-sided CUSUM over standardised scores:

* the first ``warmup`` windows calibrate a baseline mean/sigma (Welford);
* afterwards each window's z-score feeds ``S = max(0, S + z - drift)``;
* the stream is flagged when ``S`` exceeds ``threshold``.

With the defaults, a true ``gamma`` of a few percent scores hundreds of
sigmas and trips the threshold within one or two windows; benign noise pays
the ``drift`` toll and decays back to zero.  All state is JSON-safe floats,
so a checkpointed detector resumes bit-identically.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping

from repro.utils.validation import check_integer, check_positive


class CusumDetector:
    """One-sided CUSUM with a self-calibrated baseline.

    Parameters
    ----------
    warmup:
        Number of initial windows used to estimate the baseline mean and
        standard deviation of the monitored statistic (assumed attack-free;
        point the service's ``attack_start`` past the warmup).
    threshold:
        CUSUM score that flags the stream.
    drift:
        Per-window toll subtracted from the z-score before accumulating;
        benign fluctuations below ``drift`` sigmas never build up.
    min_sigma:
        Floor on the calibrated sigma, so a noiseless warmup (tiny windows,
        exact zeros) cannot make the detector hair-triggered.
    """

    def __init__(
        self,
        warmup: int = 5,
        threshold: float = 8.0,
        drift: float = 1.0,
        min_sigma: float = 0.005,
    ) -> None:
        self.warmup = check_integer(warmup, "warmup", minimum=1)
        self.threshold = check_positive(threshold, "threshold")
        self.drift = check_positive(drift, "drift", strict=False)
        self.min_sigma = check_positive(min_sigma, "min_sigma")
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.score = 0.0
        self.flagged_window: int | None = None

    # ------------------------------------------------------------------
    # online updates
    # ------------------------------------------------------------------
    @property
    def calibrated(self) -> bool:
        """Whether the baseline warmup is complete."""
        return self._n >= self.warmup

    @property
    def flagged(self) -> bool:
        """Whether the stream has been flagged (sticky)."""
        return self.flagged_window is not None

    def sigma(self) -> float:
        """The calibrated (floored) baseline standard deviation."""
        variance = self._m2 / (self._n - 1) if self._n > 1 else 0.0
        return max(math.sqrt(max(variance, 0.0)), self.min_sigma)

    def update(self, window: int, value: float) -> bool:
        """Consume one window's statistic; return True when it trips the flag.

        Warmup windows only feed the baseline.  The flag is sticky — once
        raised, later windows keep updating the score (useful diagnostics)
        but never re-raise.
        """
        window = check_integer(window, "window", minimum=0)
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"detector statistic must be finite, got {value}")
        if self._n < self.warmup:
            # Welford's online mean/variance over the calibration prefix
            self._n += 1
            delta = value - self._mean
            self._mean += delta / self._n
            self._m2 += delta * (value - self._mean)
            return False
        z = (value - self._mean) / self.sigma()
        self.score = max(0.0, self.score + z - self.drift)
        if self.score > self.threshold and self.flagged_window is None:
            self.flagged_window = window
            return True
        return False

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot (floats round-trip exactly through JSON)."""
        return {
            "warmup": self.warmup,
            "threshold": self.threshold,
            "drift": self.drift,
            "min_sigma": self.min_sigma,
            "n": self._n,
            "mean": self._mean,
            "m2": self._m2,
            "score": self.score,
            "flagged_window": self.flagged_window,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "CusumDetector":
        """Rebuild a detector from :meth:`state_dict` (ValueError if corrupt)."""
        if not isinstance(state, Mapping):
            raise ValueError(
                f"detector snapshot must be a mapping, got {type(state).__name__}"
            )
        required = ("warmup", "threshold", "drift", "min_sigma", "n", "mean",
                    "m2", "score", "flagged_window")
        missing = [key for key in required if key not in state]
        if missing:
            raise ValueError(f"detector snapshot is missing keys {missing}")
        out = cls(
            warmup=state["warmup"],
            threshold=state["threshold"],
            drift=state["drift"],
            min_sigma=state["min_sigma"],
        )
        out._n = check_integer(state["n"], "detector snapshot n", minimum=0)
        for key in ("mean", "m2", "score"):
            value = float(state[key])
            if not math.isfinite(value):
                raise ValueError(f"detector snapshot key {key!r} must be finite")
        out._mean = float(state["mean"])
        out._m2 = float(state["m2"])
        out.score = float(state["score"])
        flagged = state["flagged_window"]
        out.flagged_window = (
            None
            if flagged is None
            else check_integer(flagged, "detector snapshot flagged_window", minimum=0)
        )
        return out


__all__ = ["CusumDetector"]
