"""Poison-value ranges and distributions.

The paper parameterises Biased Byzantine Attacks by

* a **poison range** ``Poi[r_l, r_r]`` expressed relative to the output-domain
  bound ``C`` and the reference mean ``O`` — e.g. ``[3C/4, C]``, ``[O, C/2]``;
* a **poison distribution** over that range — uniform by default, with
  Gaussian, Beta(1,6), Beta(6,1) and point-mass variants used in Figure 7.

:class:`PoisonRange` resolves the symbolic endpoints into concrete numbers for
a given mechanism, and the :class:`PoisonDistribution` subclasses sample poison
values inside the resolved range.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.ldp.base import NumericalMechanism
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_in_interval


@dataclass(frozen=True)
class _Endpoint:
    """A symbolic endpoint ``scale_c * C + scale_mean * O + offset``.

    ``C`` is the magnitude of the output-domain bound on the poisoned side
    (``D_R`` for right-side attacks, ``|D_L|`` for left-side attacks), and
    ``O`` is the reference mean.
    """

    scale_c: float = 0.0
    scale_mean: float = 0.0
    offset: float = 0.0

    def resolve(self, c_bound: float, reference_mean: float) -> float:
        return self.scale_c * c_bound + self.scale_mean * reference_mean + self.offset


@dataclass(frozen=True)
class PoisonRange:
    """Symbolic poison-value range ``[low, high]`` relative to ``C`` and ``O``."""

    low: _Endpoint
    high: _Endpoint
    label: str = ""

    # ------------------------------------------------------------------
    # constructors matching the paper's notation
    # ------------------------------------------------------------------
    @staticmethod
    def of_c(low_frac: float, high_frac: float) -> "PoisonRange":
        """Range ``[low_frac * C, high_frac * C]`` (e.g. ``[3C/4, C]``)."""
        return PoisonRange(
            low=_Endpoint(scale_c=low_frac),
            high=_Endpoint(scale_c=high_frac),
            label=f"[{low_frac:g}C,{high_frac:g}C]",
        )

    @staticmethod
    def from_mean_to_c(high_frac: float) -> "PoisonRange":
        """Range ``[O, high_frac * C]`` (e.g. ``[O, C/2]``)."""
        return PoisonRange(
            low=_Endpoint(scale_mean=1.0),
            high=_Endpoint(scale_c=high_frac),
            label=f"[O,{high_frac:g}C]",
        )

    @staticmethod
    def affine(
        low_c: float, low_offset: float, high_c: float, high_offset: float = 0.0
    ) -> "PoisonRange":
        """Range ``[low_c*C + low_offset, high_c*C + high_offset]``.

        Needed for mechanism-specific ranges such as Square Wave's
        ``[1 + b/2, 1 + b]`` (Figure 8), which mixes a constant with a fraction
        of the output-domain bound.
        """
        return PoisonRange(
            low=_Endpoint(scale_c=low_c, offset=low_offset),
            high=_Endpoint(scale_c=high_c, offset=high_offset),
            label=(
                f"[{low_c:g}C{low_offset:+g},{high_c:g}C{high_offset:+g}]"
            ),
        )

    @staticmethod
    def absolute(low: float, high: float) -> "PoisonRange":
        """Fixed numerical range independent of ``C`` and ``O``."""
        return PoisonRange(
            low=_Endpoint(offset=low),
            high=_Endpoint(offset=high),
            label=f"[{low:g},{high:g}]",
        )

    # ------------------------------------------------------------------
    def resolve(
        self,
        mechanism: NumericalMechanism,
        reference_mean: float = 0.0,
        side: str = "right",
    ) -> Tuple[float, float]:
        """Concrete ``(low, high)`` for ``mechanism`` on the given side.

        For a left-side attack the range is mirrored through the reference
        mean, matching how the paper treats the two sides symmetrically.
        """
        domain_low, domain_high = mechanism.output_domain
        if side == "right":
            c_bound = domain_high
            low = self.low.resolve(c_bound, reference_mean)
            high = self.high.resolve(c_bound, reference_mean)
        elif side == "left":
            c_bound = abs(domain_low)
            # mirror: [x, y] on the right becomes [-y, -x] on the left
            high = -self.low.resolve(c_bound, reference_mean)
            low = -self.high.resolve(c_bound, reference_mean)
        else:
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        low = max(low, domain_low)
        high = min(high, domain_high)
        if high < low:
            raise ValueError(
                f"poison range {self.label or '(custom)'} resolves to an empty interval "
                f"[{low:.4g}, {high:.4g}] for side={side!r}"
            )
        return float(low), float(high)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label or "PoisonRange"


#: the four ranges evaluated throughout Section VI
PAPER_POISON_RANGES: Dict[str, PoisonRange] = {
    "[3C/4,C]": PoisonRange.of_c(0.75, 1.0),
    "[C/2,C]": PoisonRange.of_c(0.5, 1.0),
    "[O,C/2]": PoisonRange.from_mean_to_c(0.5),
    "[O,C]": PoisonRange.from_mean_to_c(1.0),
    "[C/2,3C/4]": PoisonRange.of_c(0.5, 0.75),
}


class PoisonDistribution(abc.ABC):
    """Distribution of poison values over a concrete ``[low, high]`` range."""

    @abc.abstractmethod
    def sample(self, n: int, low: float, high: float, rng: RngLike = None) -> np.ndarray:
        """Draw ``n`` poison values inside ``[low, high]``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class UniformPoison(PoisonDistribution):
    """Uniform poison values over the range (the paper's default)."""

    def sample(self, n: int, low: float, high: float, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        return rng.uniform(low, high, size=n)


class GaussianPoison(PoisonDistribution):
    """Gaussian poison values centred on the range, clipped to it (Figure 7)."""

    def __init__(self, relative_std: float = 0.2) -> None:
        self.relative_std = check_in_interval(relative_std, 0.0, 10.0, "relative_std")

    def sample(self, n: int, low: float, high: float, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        center = (low + high) / 2.0
        std = max((high - low) * self.relative_std, 1e-12)
        return np.clip(rng.normal(center, std, size=n), low, high)


class BetaPoison(PoisonDistribution):
    """Beta-distributed poison values rescaled onto the range.

    ``BetaPoison(1, 6)`` concentrates mass near the lower end of the range and
    ``BetaPoison(6, 1)`` near the upper end, matching Figure 7(c)(d).
    """

    def __init__(self, a: float, b: float) -> None:
        if a <= 0 or b <= 0:
            raise ValueError(f"Beta parameters must be positive, got a={a}, b={b}")
        self.a = float(a)
        self.b = float(b)

    def sample(self, n: int, low: float, high: float, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        return low + rng.beta(self.a, self.b, size=n) * (high - low)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BetaPoison(a={self.a:g}, b={self.b:g})"


class PointMassPoison(PoisonDistribution):
    """All poison values at one point of the range (``position`` in [0, 1]).

    ``position=1`` puts every poison value at the upper range end — the
    maximally damaging configuration used in the evasion-utility bound
    (Equation 18).
    """

    def __init__(self, position: float = 1.0) -> None:
        self.position = check_in_interval(position, 0.0, 1.0, "position")

    def sample(self, n: int, low: float, high: float, rng: RngLike = None) -> np.ndarray:
        ensure_rng(rng)
        return np.full(n, low + self.position * (high - low))


__all__ = [
    "PoisonRange",
    "PAPER_POISON_RANGES",
    "PoisonDistribution",
    "UniformPoison",
    "GaussianPoison",
    "BetaPoison",
    "PointMassPoison",
]
