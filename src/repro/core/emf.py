"""Expectation-Maximization Filter — EMF (Algorithm 2).

Given the transform matrix ``M`` and the collected (perturbed + poison)
reports, EMF reconstructs the latent frequency histogram
``F = {x_1..x_d, y_1..y_{n_poison}}`` by maximum-likelihood EM:

* ``x`` is the frequency histogram of **normal users' original values**;
* ``y`` is the frequency histogram of **poison values** over the poison
  buckets of the output domain.

The log-likelihood (Equation 8) is concave in ``F``, so EM converges to the
global maximiser.  When ``epsilon -> 0`` Theorem 3 shows ``x`` converges to
the uniform distribution and ``y`` to the true poison-value distribution,
which is what makes the downstream feature estimation work.

The termination condition follows Section VI-A: iterate until the
log-likelihood improves by less than ``tau = 0.01 * e^epsilon`` (overridable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.transform import TransformMatrix
from repro.ldp.ems import em_reconstruct, em_reconstruct_batch
from repro.utils.histogram import histogram_mean, histogram_variance

#: hard cap on EM iterations; generous relative to typical convergence (<100)
DEFAULT_MAX_ITER = 5_000


def default_tolerance(epsilon: float | None) -> float:
    """The paper's termination threshold ``tau = 0.01 * e^epsilon``."""
    if epsilon is None:
        return 1e-6
    return max(1e-9, 0.01 * math.exp(epsilon))


@dataclass
class EMFResult:
    """Output of EMF (and of the EMF*/CEMF* post-processing).

    Attributes
    ----------
    normal_histogram:
        ``x_hat`` — reconstructed frequency histogram of normal users over the
        input grid (sums to ``1 - gamma_hat``).
    poison_histogram:
        ``y_hat`` — reconstructed frequency histogram of poison values over
        the poison buckets (sums to ``gamma_hat``).
    transform:
        The transform matrix the reconstruction was run against.
    log_likelihood, n_iterations, converged:
        EM diagnostics.
    """

    normal_histogram: np.ndarray
    poison_histogram: np.ndarray
    transform: TransformMatrix
    log_likelihood: float
    n_iterations: int
    converged: bool

    # ------------------------------------------------------------------
    # derived Byzantine features
    # ------------------------------------------------------------------
    @property
    def gamma_hat(self) -> float:
        """Estimated proportion of Byzantine users (Equation 9)."""
        return float(self.poison_histogram.sum())

    @property
    def normal_histogram_variance(self) -> float:
        """Variance of ``x_hat`` — the side-probing criterion (Algorithm 3)."""
        return histogram_variance(self.normal_histogram)

    @property
    def poison_mean(self) -> float:
        """Mean of the reconstructed poison values (Equation 11).

        Returns the centre of the poison range when no poison mass was
        reconstructed (``gamma_hat == 0``), which keeps downstream formulas
        well defined and contributes nothing to the corrected mean.
        """
        centers = self.transform.poison_bucket_centers
        mass = self.poison_histogram.sum()
        if mass <= 0:
            return float(centers.mean()) if centers.size else 0.0
        return histogram_mean(self.poison_histogram, centers)

    def normalized_normal_histogram(self) -> np.ndarray:
        """``x_hat`` rescaled to sum to one (the normal users' distribution)."""
        total = self.normal_histogram.sum()
        if total <= 0:
            d = self.normal_histogram.size
            return np.full(d, 1.0 / d)
        return self.normal_histogram / total

    def estimated_normal_mean(self) -> float:
        """Mean of the reconstructed normal-user distribution.

        This is the distribution-estimation route to the mean (used by the
        Square Wave variant); the PM route uses
        :func:`repro.core.mean_estimation.corrected_mean` instead.
        """
        return histogram_mean(
            self.normalized_normal_histogram(), self.transform.input_grid.centers
        )


def run_emf(
    transform: TransformMatrix,
    reports: np.ndarray | None = None,
    counts: np.ndarray | None = None,
    epsilon: float | None = None,
    tol: float | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    initial: np.ndarray | None = None,
) -> EMFResult:
    """Run EMF (Algorithm 2).

    Parameters
    ----------
    transform:
        Transform matrix built by :func:`repro.core.transform.build_transform_matrix`.
    reports:
        Collected perturbed values; mutually exclusive with ``counts``.
    counts:
        Pre-computed output-bucket counts (length ``d'``).
    epsilon:
        Privacy budget used only to derive the default tolerance
        ``tau = 0.01 e^epsilon``.
    tol, max_iter:
        EM convergence controls (``tol`` overrides the epsilon-derived value).
    initial:
        Optional warm-start weights (length ``d + n_poison``, i.e. a previous
        run's ``concatenate([normal_histogram, poison_histogram])``); defaults
        to the uniform cold start.  The log-likelihood is concave, so a warm
        start converges to the same maximiser in fewer iterations — the
        windowed service exploits this across consecutive windows.
    """
    if (reports is None) == (counts is None):
        raise ValueError("provide exactly one of `reports` or `counts`")
    if counts is None:
        counts = transform.output_counts(reports)
    counts = np.asarray(counts, dtype=float)
    if tol is None:
        tol = default_tolerance(epsilon)

    result = em_reconstruct(
        transform.matrix,
        counts,
        initial=initial,
        max_iter=max_iter,
        tol=tol,
        indicator_tail=transform.poison_bucket_indices,
    )
    normal, poison = transform.split_weights(result.weights)
    return EMFResult(
        normal_histogram=normal,
        poison_histogram=poison,
        transform=transform,
        log_likelihood=result.log_likelihood,
        n_iterations=result.n_iterations,
        converged=result.converged,
    )


def run_emf_stacked(
    transforms: Sequence[TransformMatrix],
    counts: np.ndarray,
    epsilon: float | None = None,
    tol: float | None = None,
    max_iter: int = DEFAULT_MAX_ITER,
    initial: Sequence[np.ndarray | None] | None = None,
) -> List[EMFResult]:
    """Run EMF for several hypotheses sharing one normal block, jointly.

    The side hypotheses of Algorithm 3 (and any other family of transforms
    that differ only in their poison columns) share their dense normal block
    — the poison columns are one-hot indicators — so the whole family fits
    :func:`repro.ldp.ems.em_reconstruct_batch`: every EM iteration advances
    all hypotheses with a single BLAS product over the shared normal block,
    and hypotheses that converge early stop consuming compute while the
    stragglers iterate.  Hypotheses with fewer poison buckets are padded
    internally (padded components are pinned to zero).

    The reconstructions converge to the same maximisers as per-hypothesis
    :func:`run_emf` calls; iterate-level floating-point ordering differs, so
    use :func:`run_emf` where bit-stable output is required.

    Parameters
    ----------
    transforms:
        The hypothesis transforms; they must share the output grid and the
        normal block (verified).
    counts:
        Output-bucket counts shared by every hypothesis (the hypotheses
        explain the same observations).
    epsilon, tol, max_iter:
        Convergence controls as in :func:`run_emf`.
    initial:
        Optional per-hypothesis warm-start weight vectors (each of length
        ``n_normal + n_poison(h)``, as in :func:`run_emf`); individual
        entries may be ``None`` to cold-start just that hypothesis.
    """
    if not transforms:
        raise ValueError("at least one transform is required")
    first = transforms[0]
    n_normal = first.n_normal_components
    dense = first.matrix[:, :n_normal]
    for transform in transforms[1:]:
        if (
            transform.n_normal_components != n_normal
            or transform.output_grid != first.output_grid
            or not np.array_equal(transform.matrix[:, :n_normal], dense)
        ):
            raise ValueError(
                "stacked EMF hypotheses must share the output grid and the "
                "normal block; build them over the same grids and mechanism"
            )
    counts = np.asarray(counts, dtype=float)
    if tol is None:
        tol = default_tolerance(epsilon)

    tail_sizes = [transform.n_poison_components for transform in transforms]
    n_tail = max(tail_sizes)
    tail_rows = np.empty((len(transforms), n_tail), dtype=np.intp)
    tail_mask = np.zeros((len(transforms), n_tail), dtype=bool)
    for h, transform in enumerate(transforms):
        indices = transform.poison_bucket_indices
        tail_rows[h, : indices.size] = indices
        # pad by repeating the first poison row; padded weight stays zero
        tail_rows[h, indices.size:] = indices[0] if indices.size else 0
        tail_mask[h, : indices.size] = True

    batch_initial = None
    if initial is not None:
        if len(initial) != len(transforms):
            raise ValueError(
                f"initial must provide one warm start per hypothesis "
                f"({len(transforms)}), got {len(initial)}"
            )
        if any(weights is not None for weights in initial):
            batch_initial = np.zeros((len(transforms), n_normal + n_tail))
            for h, weights in enumerate(initial):
                n_real = n_normal + tail_sizes[h]
                if weights is None:
                    # reproduce the batch kernel's cold start for this row
                    batch_initial[h, :n_real] = 1.0 / n_real
                    continue
                weights = np.asarray(weights, dtype=float)
                if weights.shape != (n_real,):
                    raise ValueError(
                        f"hypothesis {h} warm start must have length {n_real}, "
                        f"got shape {weights.shape}"
                    )
                batch_initial[h, :n_real] = weights

    batch = em_reconstruct_batch(
        dense,
        counts,
        tail_rows,
        tail_mask=tail_mask,
        initial=batch_initial,
        max_iter=max_iter,
        tol=tol,
    )
    results: List[EMFResult] = []
    for h, transform in enumerate(transforms):
        weights = batch.weights[h][: n_normal + tail_sizes[h]]
        normal, poison = transform.split_weights(weights)
        results.append(
            EMFResult(
                normal_histogram=normal,
                poison_histogram=poison,
                transform=transform,
                log_likelihood=float(batch.log_likelihoods[h]),
                n_iterations=int(batch.n_iterations[h]),
                converged=bool(batch.converged[h]),
            )
        )
    return results


__all__ = [
    "EMFResult",
    "run_emf",
    "run_emf_stacked",
    "default_tolerance",
    "DEFAULT_MAX_ITER",
]
