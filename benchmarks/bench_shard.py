"""Shard benchmark: sharded vs streaming DAP collection at scale.

Runs one DAP-CEMF* collection round (under a biased-Byzantine attack) at
large population sizes, once through the single-process streaming path
(``stream_population`` + ``DAPProtocol.run_stream`` — the committed
``BENCH_scale.json`` baseline) and once through the sharded path
(``build_population`` + ``DAPProtocol.run_sharded``) at several shard-worker
counts.  Wall time and peak memory are recorded per configuration.

The JSON payload has the same shape as ``bench_scale.py`` (one ``results``
list of ``{mode, n_users, ok, wall_time_s, peak_rss_mb, ...}`` rows), so the
two benchmark trajectories are directly comparable; sharded rows additionally
record their ``collect_workers``.

Every measurement runs in a fresh subprocess under an address-space cap
(``--mem-limit-gb``, default 4 GiB), like ``bench_scale.py``: the sharded
path materialises only the raw values (~80 MiB at 10^7 users), never the
reports, so it must stay within the same budget the streaming path satisfies.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py --out BENCH_shard.json
    PYTHONPATH=src python benchmarks/bench_shard.py --sizes 1000000 --workers 1 4
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import time

EPSILON = 1.0
GAMMA = 0.25
SEED = 7
CHUNK_SIZE = 65_536
#: dataset records are sampled with replacement, so the dataset itself stays
#: small no matter the population size
DATASET_SAMPLES = 100_000
DEFAULT_SIZES = (1_000_000, 10_000_000)
DEFAULT_WORKERS = (1, 2, 4, 8)


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (Linux: ru_maxrss is KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _peak_rss_children_mb() -> float:
    """Peak resident set size over reaped child processes in MiB."""
    return resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024.0


def run_single(mode: str, n_users: int, mem_limit_gb: float) -> dict:
    """Child entry point: one collection round, reported as JSON on stdout."""
    if mem_limit_gb > 0:
        limit = int(mem_limit_gb * 1024**3)
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))

    import numpy as np  # noqa: F401  (imported after the rlimit is set)

    from repro.attacks.bba import BiasedByzantineAttack
    from repro.attacks.distributions import PAPER_POISON_RANGES
    from repro.core.dap import DAPConfig, DAPProtocol
    from repro.datasets.synthetic import uniform_dataset
    from repro.simulation.population import build_population, stream_population

    dataset = uniform_dataset(n_samples=DATASET_SAMPLES, rng=SEED)
    attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])
    protocol = DAPProtocol(DAPConfig(epsilon=EPSILON, estimator="cemf_star"))

    workers = None
    start = time.perf_counter()
    if mode == "streaming":
        stream = stream_population(
            dataset, n_users, GAMMA, rng=SEED, chunk_size=CHUNK_SIZE
        )
        result = protocol.run_stream(
            stream.chunks(), stream.n_normal, attack, stream.n_byzantine, rng=SEED
        )
        truth = stream.true_mean
    elif mode.startswith("sharded-"):
        workers = int(mode.rsplit("-", 1)[1])
        population = build_population(dataset, n_users, GAMMA, rng=SEED)
        result = protocol.run_sharded(
            population.normal_values,
            attack,
            population.n_byzantine,
            rng=SEED,
            n_shards=workers,
            n_workers=workers,
        )
        truth = population.true_mean
    else:
        raise ValueError(f"unknown mode {mode!r}")
    elapsed = time.perf_counter() - start

    report = {
        "mode": mode,
        "n_users": n_users,
        "ok": True,
        "wall_time_s": round(elapsed, 3),
        "peak_rss_mb": round(max(_peak_rss_mb(), _peak_rss_children_mb()), 1),
        "estimate": result.estimate,
        "true_mean": truth,
        "abs_error": abs(result.estimate - truth),
        "gamma_hat": result.gamma_hat,
    }
    if workers is not None:
        report["collect_workers"] = workers
    return report


def run_child(mode: str, n_users: int, mem_limit_gb: float, timeout_s: float) -> dict:
    """Run one configuration in a subprocess and parse its JSON report."""
    command = [
        sys.executable,
        __file__,
        "--single",
        mode,
        str(n_users),
        "--mem-limit-gb",
        str(mem_limit_gb),
    ]
    start = time.perf_counter()
    try:
        child = subprocess.run(
            command, capture_output=True, text=True, timeout=timeout_s
        )
    except subprocess.TimeoutExpired:
        return {
            "mode": mode,
            "n_users": n_users,
            "ok": False,
            "error": f"timed out after {timeout_s:g}s",
        }
    elapsed = time.perf_counter() - start
    if child.returncode != 0:
        tail = (child.stderr or "").strip().splitlines()
        return {
            "mode": mode,
            "n_users": n_users,
            "ok": False,
            "error": tail[-1] if tail else f"exit code {child.returncode}",
            "wall_time_s": round(elapsed, 3),
        }
    return json.loads(child.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument(
        "--workers", type=int, nargs="+", default=list(DEFAULT_WORKERS)
    )
    parser.add_argument("--mem-limit-gb", type=float, default=4.0)
    parser.add_argument("--timeout-s", type=float, default=1800.0)
    parser.add_argument("--out", default="BENCH_shard.json")
    parser.add_argument("--single", nargs=2, metavar=("MODE", "N_USERS"), default=None)
    args = parser.parse_args(argv)

    if args.single is not None:
        mode, n_users = args.single[0], int(args.single[1])
        try:
            report = run_single(mode, n_users, args.mem_limit_gb)
        except MemoryError:
            print("MemoryError: exceeded the address-space cap", file=sys.stderr)
            return 3
        print(json.dumps(report))
        return 0

    results = []
    estimates: dict = {}
    for n_users in args.sizes:
        modes = ["streaming"] + [f"sharded-{workers}" for workers in args.workers]
        for mode in modes:
            print(f"[bench_shard] {mode} @ {n_users:,} users ...", flush=True)
            report = run_child(mode, n_users, args.mem_limit_gb, args.timeout_s)
            status = (
                f"{report['wall_time_s']:.1f}s, {report['peak_rss_mb']:.0f} MiB"
                if report.get("ok")
                else f"FAILED ({report.get('error')})"
            )
            print(f"[bench_shard]   -> {status}", flush=True)
            results.append(report)
            if report.get("ok") and mode.startswith("sharded-"):
                estimates.setdefault(n_users, set()).add(report["estimate"])

    # the sharded estimate must not depend on the worker count
    for n_users, values in estimates.items():
        if len(values) > 1:
            print(
                f"[bench_shard] WARNING: sharded estimates diverge at "
                f"{n_users:,} users: {sorted(values)}",
                file=sys.stderr,
            )

    payload = {
        "benchmark": "sharded vs streaming DAP collection",
        "config": {
            "epsilon": EPSILON,
            "gamma": GAMMA,
            "estimator": "cemf_star",
            "attack": "bba [C/2,C]",
            "chunk_size": CHUNK_SIZE,
            "dataset_samples": DATASET_SAMPLES,
            "mem_limit_gb": args.mem_limit_gb,
            "seed": SEED,
            "workers": list(args.workers),
        },
        "results": results,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"[bench_shard] wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
