"""User populations: split a dataset into normal and Byzantine users.

The paper parameterises every experiment by the total population ``N`` and the
Byzantine proportion ``gamma``; Byzantine users' *original* values are
irrelevant (they submit whatever the attack strategy chooses), so a population
is simply the normal users' values plus a Byzantine head-count.

For populations larger than RAM, :func:`stream_population` produces the same
split as a :class:`PopulationStream`: the normal users' values are sampled
chunk by chunk and the ground-truth mean is accumulated on the fly, so memory
stays proportional to the chunk size.  Both generators share
:func:`population_counts`, so the byzantine/normal split rounds identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.collect.accumulators import SumCount
from repro.collect.streaming import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.datasets.base import NumericalDataset
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction, check_integer


def population_counts(n_users: int, gamma: float) -> tuple[int, int]:
    """The ``(n_normal, n_byzantine)`` split of a population.

    Single source of truth for the rounding rule (``m = round(N * gamma)``),
    shared by the in-memory and streaming generators so both always satisfy
    ``n_normal + n_byzantine == n_users`` with at least one normal user.
    """
    n_users = check_integer(n_users, "n_users", minimum=1)
    gamma = check_fraction(gamma, "gamma")
    n_byzantine = int(round(n_users * gamma))
    n_normal = n_users - n_byzantine
    if n_normal <= 0:
        raise ValueError(
            f"gamma={gamma:g} leaves no normal users in a population of {n_users}"
        )
    return n_normal, n_byzantine


def _rescale(values: np.ndarray, input_domain: tuple[float, float]) -> np.ndarray:
    low, high = input_domain
    if (low, high) != (-1.0, 1.0):
        # dataset values are normalised to [-1, 1]; rescale to the target domain
        values = (values + 1.0) / 2.0 * (high - low) + low
    return values


@dataclass
class Population:
    """A user population for one experiment trial.

    Attributes
    ----------
    normal_values:
        Original values of the normal users (already in the mechanism's input
        domain).
    n_byzantine:
        Number of Byzantine users.
    true_mean:
        Ground truth the estimators are evaluated against: the mean of the
        *normal* users' values (the collector's goal per Section III-B).
    """

    normal_values: np.ndarray
    n_byzantine: int
    true_mean: float

    @property
    def n_normal(self) -> int:
        """Number of normal users."""
        return int(self.normal_values.size)

    @property
    def n_total(self) -> int:
        """Total number of users ``N``."""
        return self.n_normal + self.n_byzantine

    @property
    def gamma(self) -> float:
        """True Byzantine proportion ``gamma = m / N``."""
        if self.n_total == 0:
            return 0.0
        return self.n_byzantine / self.n_total


def build_population(
    dataset: NumericalDataset,
    n_users: int,
    gamma: float,
    rng: RngLike = None,
    input_domain: tuple[float, float] = (-1.0, 1.0),
) -> Population:
    """Sample a population of ``n_users`` with Byzantine proportion ``gamma``.

    Normal users' values are sampled from the dataset; when the target
    mechanism uses a different input domain (e.g. Square Wave's ``[0, 1]``),
    the values are affinely rescaled into it.
    """
    n_normal, n_byzantine = population_counts(n_users, gamma)
    rng = ensure_rng(rng)
    values = _rescale(dataset.sample(n_normal, rng), input_domain)
    return Population(
        normal_values=values,
        n_byzantine=n_byzantine,
        true_mean=float(values.mean()),
    )


class PopulationStream:
    """A population whose normal-user values arrive as chunks.

    The streaming counterpart of :class:`Population`: the byzantine/normal
    split is fixed up front (same rounding as :func:`build_population`), the
    values are sampled lazily in chunks of ``chunk_size``, and the exact
    ground-truth mean is accumulated while the stream is consumed.  The
    stream is single-use: :meth:`chunks` may only be iterated once, and
    :attr:`true_mean` is available only after full consumption.
    """

    def __init__(
        self,
        dataset: NumericalDataset,
        n_users: int,
        gamma: float,
        rng: RngLike = None,
        input_domain: tuple[float, float] = (-1.0, 1.0),
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self.n_normal, self.n_byzantine = population_counts(n_users, gamma)
        self.chunk_size = check_integer(chunk_size, "chunk_size", minimum=1)
        self.input_domain = (float(input_domain[0]), float(input_domain[1]))
        self._dataset = dataset
        self._rng = ensure_rng(rng)
        self._truth = SumCount()
        self._started = False

    @property
    def n_total(self) -> int:
        """Total number of users ``N``."""
        return self.n_normal + self.n_byzantine

    @property
    def gamma(self) -> float:
        """True Byzantine proportion ``gamma = m / N``."""
        return self.n_byzantine / self.n_total

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield the normal users' values in chunks (single use)."""
        if self._started:
            raise RuntimeError(
                "PopulationStream.chunks() may only be consumed once; build a "
                "fresh stream per collection round"
            )
        self._started = True
        for start, stop in iter_chunks(self.n_normal, self.chunk_size):
            values = _rescale(
                self._dataset.sample(stop - start, self._rng), self.input_domain
            )
            self._truth.update(values)
            yield values

    @property
    def true_mean(self) -> float:
        """Mean of the normal users' values (exact, chunking-invariant)."""
        if self._truth.count != self.n_normal:
            raise RuntimeError(
                f"true_mean is only defined once the stream is fully consumed "
                f"({self._truth.count}/{self.n_normal} values seen)"
            )
        return self._truth.mean

    def materialize(self) -> Population:
        """Concatenate the stream into an in-memory :class:`Population`.

        Fallback for schemes without a native streaming path — this costs the
        full population's memory, which is exactly what streaming avoids, so
        it is only appropriate at scales where the in-memory path would have
        worked anyway.
        """
        values = np.concatenate(list(self.chunks())) if self.n_normal else np.empty(0)
        return Population(
            normal_values=values,
            n_byzantine=self.n_byzantine,
            true_mean=self.true_mean,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PopulationStream(n_normal={self.n_normal}, "
            f"n_byzantine={self.n_byzantine}, chunk_size={self.chunk_size})"
        )


def stream_population(
    dataset: NumericalDataset,
    n_users: int,
    gamma: float,
    rng: RngLike = None,
    input_domain: tuple[float, float] = (-1.0, 1.0),
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> PopulationStream:
    """Chunked counterpart of :func:`build_population` (same split rounding)."""
    return PopulationStream(
        dataset,
        n_users,
        gamma,
        rng=rng,
        input_domain=input_domain,
        chunk_size=chunk_size,
    )


__all__ = [
    "Population",
    "PopulationStream",
    "build_population",
    "population_counts",
    "stream_population",
]
