"""Tests for the Duchi, Laplace, Hybrid and Square Wave mechanisms."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ldp.duchi import DuchiMechanism
from repro.ldp.hybrid import EPSILON_STAR, HybridMechanism
from repro.ldp.laplace import LaplaceMechanism
from repro.ldp.square_wave import SquareWaveMechanism


class TestDuchi:
    def test_output_values_are_binary(self, rng):
        mech = DuchiMechanism(1.0)
        out = mech.perturb(rng.uniform(-1, 1, 1_000), rng)
        assert set(np.round(np.abs(out), 10)) == {round(mech.magnitude, 10)}

    def test_magnitude_formula(self):
        mech = DuchiMechanism(1.0)
        assert mech.magnitude == pytest.approx((math.e + 1) / (math.e - 1))

    def test_unbiasedness(self, rng):
        mech = DuchiMechanism(1.5)
        value = -0.3
        out = mech.perturb(np.full(80_000, value), rng)
        assert out.mean() == pytest.approx(value, abs=0.02)

    def test_positive_probability_bounds(self):
        mech = DuchiMechanism(1.0)
        probs = mech.positive_probability(np.array([-1.0, 0.0, 1.0]))
        assert probs[0] == pytest.approx(1 / (math.e + 1))
        assert probs[1] == pytest.approx(0.5)
        assert probs[2] == pytest.approx(math.e / (math.e + 1))

    def test_worst_case_variance_at_zero(self):
        mech = DuchiMechanism(1.0)
        assert mech.worst_case_variance() == pytest.approx(mech.variance(0.0))
        assert mech.variance(0.0) > mech.variance(1.0)


class TestLaplace:
    def test_scale(self):
        assert LaplaceMechanism(2.0).scale == pytest.approx(1.0)

    def test_unbiasedness(self, rng):
        mech = LaplaceMechanism(1.0)
        out = mech.perturb(np.full(60_000, 0.25), rng)
        assert out.mean() == pytest.approx(0.25, abs=0.03)

    def test_variance_independent_of_value(self):
        mech = LaplaceMechanism(1.0)
        assert mech.variance(0.0) == mech.variance(1.0) == pytest.approx(2 * mech.scale**2)

    def test_output_domain_contains_input_domain(self):
        low, high = LaplaceMechanism(1.0).output_domain
        assert low < -1 and high > 1


class TestHybrid:
    def test_alpha_zero_below_threshold(self):
        assert HybridMechanism(EPSILON_STAR / 2).alpha == 0.0

    def test_alpha_formula_above_threshold(self):
        epsilon = 2.0
        assert HybridMechanism(epsilon).alpha == pytest.approx(1 - math.exp(-epsilon / 2))

    def test_unbiasedness(self, rng):
        mech = HybridMechanism(1.0)
        out = mech.perturb(np.full(80_000, 0.4), rng)
        assert out.mean() == pytest.approx(0.4, abs=0.03)

    def test_output_domain_covers_both_components(self):
        mech = HybridMechanism(1.0)
        low, high = mech.output_domain
        assert high >= mech.piecewise.output_domain[1]
        assert high >= mech.duchi.output_domain[1]

    def test_variance_between_components_when_mixing(self):
        mech = HybridMechanism(2.0)
        mixture = mech.variance(0.5)
        low = min(mech.piecewise.variance(0.5), mech.duchi.variance(0.5))
        high = max(mech.piecewise.variance(0.5), mech.duchi.variance(0.5))
        assert low <= mixture <= high


class TestSquareWave:
    def test_b_positive_and_decreasing_in_epsilon(self):
        assert SquareWaveMechanism(0.5).b > SquareWaveMechanism(2.0).b > 0

    def test_output_domain(self):
        mech = SquareWaveMechanism(1.0)
        assert mech.output_domain == (-mech.b, 1 + mech.b)

    def test_outputs_in_domain(self, rng):
        mech = SquareWaveMechanism(1.0)
        out = mech.perturb(rng.uniform(0, 1, 5_000), rng)
        assert out.min() >= -mech.b - 1e-9
        assert out.max() <= 1 + mech.b + 1e-9

    def test_ldp_density_ratio(self):
        epsilon = 1.0
        mech = SquareWaveMechanism(epsilon)
        # ratio of window density to background density equals e^eps
        assert mech._p_high / mech._p_low == pytest.approx(math.exp(epsilon))

    def test_interval_probability_full_domain(self):
        mech = SquareWaveMechanism(0.8)
        lo, hi = mech.output_domain
        assert mech.interval_probability(0.5, lo, hi) == pytest.approx(1.0)

    def test_transition_matrix_columns_sum_to_one(self):
        mech = SquareWaveMechanism(1.0)
        lo, hi = mech.output_domain
        edges = np.linspace(lo, hi, 21)
        centers = np.linspace(0.05, 0.95, 10)
        matrix = mech.interval_probability_matrix(centers, edges)
        np.testing.assert_allclose(matrix.sum(axis=0), 1.0, atol=1e-9)

    def test_distribution_reconstruction_recovers_mean(self, rng):
        mech = SquareWaveMechanism(2.0)
        values = rng.beta(2, 5, 20_000)
        reports = mech.perturb(values, rng)
        estimate = mech.estimate_mean(reports, n_input_buckets=64)
        assert estimate == pytest.approx(values.mean(), abs=0.05)

    def test_reconstruct_distribution_returns_probability_vector(self, rng):
        mech = SquareWaveMechanism(1.0)
        reports = mech.perturb(rng.uniform(0, 1, 5_000), rng)
        histogram, grid = mech.reconstruct_distribution(reports, n_input_buckets=32)
        assert histogram.size == grid.n_buckets == 32
        assert histogram.sum() == pytest.approx(1.0)
        assert histogram.min() >= 0


class TestPropertyBased:
    @given(epsilon=st.floats(0.2, 3.0), value=st.floats(0, 1), seed=st.integers(0, 9999))
    @settings(max_examples=30, deadline=None)
    def test_sw_report_in_domain(self, epsilon, value, seed):
        mech = SquareWaveMechanism(epsilon)
        out = mech.perturb(np.array([value]), seed)
        lo, hi = mech.output_domain
        assert lo - 1e-9 <= out[0] <= hi + 1e-9

    @given(epsilon=st.floats(0.2, 3.0), value=st.floats(-1, 1), seed=st.integers(0, 9999))
    @settings(max_examples=30, deadline=None)
    def test_duchi_report_is_one_of_two_values(self, epsilon, value, seed):
        mech = DuchiMechanism(epsilon)
        out = mech.perturb(np.array([value]), seed)
        assert abs(out[0]) == pytest.approx(mech.magnitude)
