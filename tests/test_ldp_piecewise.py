"""Tests for the Piecewise Mechanism."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ldp.base import MechanismError
from repro.ldp.piecewise import PiecewiseMechanism


class TestGeometry:
    def test_c_formula(self):
        mech = PiecewiseMechanism(1.0)
        half = math.exp(0.5)
        assert mech.C == pytest.approx((half + 1) / (half - 1))

    def test_output_domain_symmetric(self):
        mech = PiecewiseMechanism(0.5)
        low, high = mech.output_domain
        assert low == -high == -mech.C

    def test_c_grows_as_epsilon_shrinks(self):
        assert PiecewiseMechanism(0.1).C > PiecewiseMechanism(1.0).C > PiecewiseMechanism(4.0).C

    def test_high_band_width_is_c_minus_one(self):
        mech = PiecewiseMechanism(1.0)
        left, right = mech.high_band(np.array([0.3]))
        assert right[0] - left[0] == pytest.approx(mech.C - 1.0)

    def test_high_band_inside_output_domain(self):
        mech = PiecewiseMechanism(0.5)
        for v in (-1.0, 0.0, 1.0):
            left, right = mech.high_band(np.array([v]))
            assert left[0] >= -mech.C - 1e-9
            assert right[0] <= mech.C + 1e-9

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            PiecewiseMechanism(0.0)
        with pytest.raises(ValueError):
            PiecewiseMechanism(-1.0)


class TestPerturbation:
    def test_outputs_in_domain(self, rng):
        mech = PiecewiseMechanism(1.0)
        values = rng.uniform(-1, 1, 5_000)
        out = mech.perturb(values, rng)
        assert out.min() >= -mech.C - 1e-9
        assert out.max() <= mech.C + 1e-9

    def test_unbiasedness(self, rng):
        mech = PiecewiseMechanism(2.0)
        value = 0.4
        out = mech.perturb(np.full(60_000, value), rng)
        assert out.mean() == pytest.approx(value, abs=0.02)

    def test_mean_estimation_over_population(self, rng):
        mech = PiecewiseMechanism(1.0)
        values = rng.uniform(-0.5, 0.5, 40_000)
        out = mech.perturb(values, rng)
        assert mech.estimate_mean(out) == pytest.approx(values.mean(), abs=0.03)

    def test_out_of_domain_input_rejected(self, rng):
        mech = PiecewiseMechanism(1.0)
        with pytest.raises(MechanismError):
            mech.perturb(np.array([1.5]), rng)

    def test_deterministic_given_seed(self):
        mech = PiecewiseMechanism(1.0)
        values = np.linspace(-1, 1, 100)
        np.testing.assert_array_equal(mech.perturb(values, 3), mech.perturb(values, 3))

    def test_empty_input(self, rng):
        assert PiecewiseMechanism(1.0).perturb(np.array([]), rng).size == 0

    def test_estimate_mean_empty_raises(self):
        with pytest.raises(MechanismError):
            PiecewiseMechanism(1.0).estimate_mean(np.array([]))


class TestDensities:
    def test_pdf_ratio_satisfies_ldp(self):
        epsilon = 1.2
        mech = PiecewiseMechanism(epsilon)
        # any output value, any two inputs: density ratio bounded by e^eps
        outputs = np.linspace(-mech.C + 1e-6, mech.C - 1e-6, 25)
        inputs = np.linspace(-1, 1, 9)
        for y in outputs:
            densities = [mech.pdf(y, v) for v in inputs]
            assert max(densities) / min(densities) <= math.exp(epsilon) + 1e-9

    def test_pdf_outside_domain_is_zero(self):
        mech = PiecewiseMechanism(1.0)
        assert mech.pdf(mech.C + 1.0, 0.0) == 0.0

    def test_interval_probability_full_domain_is_one(self):
        mech = PiecewiseMechanism(0.7)
        assert mech.interval_probability(0.3, -mech.C, mech.C) == pytest.approx(1.0)

    def test_interval_probability_matches_empirical(self, rng):
        mech = PiecewiseMechanism(1.0)
        value, lo, hi = 0.2, 0.0, 1.0
        analytic = mech.interval_probability(value, lo, hi)
        samples = mech.perturb(np.full(60_000, value), rng)
        empirical = np.mean((samples >= lo) & (samples <= hi))
        assert analytic == pytest.approx(empirical, abs=0.01)

    def test_interval_probability_matrix_columns_sum_to_one(self):
        mech = PiecewiseMechanism(0.5)
        edges = np.linspace(-mech.C, mech.C, 33)
        centers = np.linspace(-0.9, 0.9, 7)
        matrix = mech.interval_probability_matrix(centers, edges)
        np.testing.assert_allclose(matrix.sum(axis=0), 1.0, atol=1e-9)

    def test_interval_probability_matrix_matches_scalar(self):
        mech = PiecewiseMechanism(1.0)
        edges = np.linspace(-mech.C, mech.C, 9)
        centers = np.array([-0.5, 0.5])
        matrix = mech.interval_probability_matrix(centers, edges)
        for i in range(8):
            for k, v in enumerate(centers):
                assert matrix[i, k] == pytest.approx(
                    mech.interval_probability(v, edges[i], edges[i + 1])
                )


class TestVariance:
    def test_worst_case_formula(self):
        epsilon = 1.0
        mech = PiecewiseMechanism(epsilon)
        half = math.exp(epsilon / 2)
        expected = 1 / (half - 1) + (half + 3) / (3 * (half - 1) ** 2)
        assert mech.worst_case_variance() == pytest.approx(expected)

    def test_variance_increases_with_magnitude(self):
        mech = PiecewiseMechanism(1.0)
        assert mech.variance(1.0) > mech.variance(0.0)

    def test_empirical_variance_close_to_analytic(self, rng):
        mech = PiecewiseMechanism(1.0)
        value = 1.0
        samples = mech.perturb(np.full(80_000, value), rng)
        assert samples.var() == pytest.approx(mech.variance(value), rel=0.05)

    def test_variance_decreases_with_epsilon(self):
        assert (
            PiecewiseMechanism(0.5).worst_case_variance()
            > PiecewiseMechanism(2.0).worst_case_variance()
        )


class TestPropertyBased:
    @given(
        epsilon=st.floats(0.1, 4.0, allow_nan=False),
        value=st.floats(-1, 1, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_high_band_contains_scaled_value(self, epsilon, value):
        mech = PiecewiseMechanism(epsilon)
        left, right = mech.high_band(np.array([value]))
        scaled = (mech.C + 1) / 2 * value - (mech.C - 1) / 2
        assert left[0] == pytest.approx(scaled)
        assert left[0] <= right[0]

    @given(
        epsilon=st.floats(0.1, 4.0, allow_nan=False),
        value=st.floats(-1, 1, allow_nan=False),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_report_in_domain(self, epsilon, value, seed):
        mech = PiecewiseMechanism(epsilon)
        out = mech.perturb(np.array([value]), seed)
        assert -mech.C - 1e-9 <= out[0] <= mech.C + 1e-9
