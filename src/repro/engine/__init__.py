"""Unified parallel experiment engine.

The engine separates *what* an experiment is from *how* it runs:

* :mod:`repro.engine.spec` — :class:`ExperimentSpec`, the declarative
  description (points, factories, scale, seed) every figure driver builds;
* :mod:`repro.engine.executor` — :func:`run_experiment`, which fans work
  units out over a process pool (serial fallback included) with pre-drawn
  seeds so results are bit-identical for any worker count;
* :mod:`repro.engine.store` — columnar JSON run artifacts with load / resume;
* :mod:`repro.engine.factories` — picklable point -> component factories.
"""

from repro.engine.executor import (
    AUTO_WORKERS,
    draw_seed_matrix,
    resolve_workers,
    run_experiment,
)
from repro.engine.factories import (
    AttackLookup,
    DatasetLookup,
    FixedAttack,
    FixedDataset,
    FixedEpsilonSchemes,
    PointKey,
    PoisonRangeAttack,
    SchemesByName,
    SchemesFromSpecs,
)
from repro.engine.spec import ExperimentSpec, PointSpec
from repro.engine.store import RunArtifact, load_run, save_run

__all__ = [
    "AUTO_WORKERS",
    "ExperimentSpec",
    "PointSpec",
    "RunArtifact",
    "AttackLookup",
    "DatasetLookup",
    "FixedAttack",
    "FixedDataset",
    "FixedEpsilonSchemes",
    "PointKey",
    "PoisonRangeAttack",
    "SchemesByName",
    "SchemesFromSpecs",
    "draw_seed_matrix",
    "load_run",
    "resolve_workers",
    "run_experiment",
    "save_run",
]
