"""Declarative scenarios: any attack x defense x epsilon x dataset grid.

A :class:`ScenarioSpec` is a versioned, JSON-serialisable description of a
whole workload — population scale, epsilon grid, attacks, schemes and
datasets, all referenced by registered component name
(:mod:`repro.registry`).  It *lowers* to an engine
:class:`~repro.engine.ExperimentSpec`, so every scenario runs through the
same parallel executor, pre-drawn seed matrix and resumable run store as the
paper's figure drivers — and produces the same columnar
:class:`~repro.simulation.sweep.SweepRecord` rows.

Scenario files are what the ``python -m repro`` CLI executes::

    {
      "name": "matrix_quick",
      "population": {"n_users": 2000, "gamma": 0.25},
      "trials": 2,
      "seed": 7,
      "epsilons": [0.5, 1.0, 2.0],
      "datasets": ["Beta(2,5)"],
      "attacks": [{"name": "bba", "poison_range": "[C/2,C]"}, "ima"],
      "schemes": ["DAP-CEMF*", "Trimming", {"defense": "kmeans"}]
    }

Determinism contract: for a fixed ``seed``, :func:`run_scenario` consumes one
master generator — first to sample the datasets (in listed order), then for
the executor's seed matrix — so the records are bit-identical to running the
lowered :class:`~repro.engine.ExperimentSpec` programmatically the same way,
at any worker count.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.attacks.base import Attack
from repro.backends import check_backend
from repro.attacks.distributions import (
    BetaPoison,
    GaussianPoison,
    PAPER_POISON_RANGES,
    PointMassPoison,
    PoisonDistribution,
    PoisonRange,
    UniformPoison,
)
from repro.datasets.base import NumericalDataset
from repro.engine import ExperimentSpec, run_experiment
from repro.engine.factories import (
    AttackLookup,
    DatasetLookup,
    PointKey,
    SchemesFromSpecs,
)
from repro.core.probing import check_probe_strategy
from repro.protocol.plan import check_protocol
from repro.registry import ATTACKS, DATASETS
from repro.simulation.sweep import SweepRecord, format_table, records_to_table
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_fraction, check_integer

#: named poison distributions accepted in attack specs
POISON_DISTRIBUTIONS: Mapping[str, type] = {
    "uniform": UniformPoison,
    "gaussian": GaussianPoison,
    "beta": BetaPoison,
    "point-mass": PointMassPoison,
}

#: attack-spec keys holding a poison range (resolved from paper notation)
_RANGE_KEYS = ("poison_range", "true_poison_range")


def _resolve_poison_range(value: Any) -> PoisonRange:
    """Resolve a range given as paper notation, ``[low, high]`` or an object."""
    if isinstance(value, PoisonRange):
        return value
    if isinstance(value, str):
        if value not in PAPER_POISON_RANGES:
            raise KeyError(
                f"unknown poison range {value!r}; known ranges: "
                f"{', '.join(PAPER_POISON_RANGES)} (or give [low, high] numbers)"
            )
        return PAPER_POISON_RANGES[value]
    if isinstance(value, Sequence) and len(value) == 2:
        return PoisonRange.absolute(float(value[0]), float(value[1]))
    raise ValueError(f"cannot interpret poison range {value!r}")


def _resolve_distribution(value: Any) -> PoisonDistribution:
    """Resolve a distribution given by name, ``{"name": ..., **params}`` or object."""
    if isinstance(value, PoisonDistribution):
        return value
    if isinstance(value, str):
        value = {"name": value}
    if not isinstance(value, Mapping):
        raise ValueError(f"cannot interpret poison distribution {value!r}")
    params = dict(value)
    name = params.pop("name", None)
    if not isinstance(name, str) or name.strip().lower() not in POISON_DISTRIBUTIONS:
        raise KeyError(
            f"unknown poison distribution {name!r}; known: "
            f"{', '.join(POISON_DISTRIBUTIONS)}"
        )
    return POISON_DISTRIBUTIONS[name.strip().lower()](**params)


def _normalize_spec(spec: Any, what: str) -> Tuple[str, str | None, Dict[str, Any]]:
    """Shared spec preamble: return ``(name, label, remaining params)``.

    Accepts a bare registered name or a mapping with a required ``name`` and
    optional ``label``; everything else stays in the params dict.
    """
    if isinstance(spec, str):
        spec = {"name": spec}
    elif isinstance(spec, Mapping):
        spec = dict(spec)
    else:
        raise TypeError(f"{what} spec must be a name or a mapping, got {spec!r}")
    name = spec.pop("name", None)
    if name is None:
        raise ValueError(f"{what} spec needs a 'name': {spec!r}")
    return name, spec.pop("label", None), spec


def attack_from_spec(spec: Any) -> Tuple[str, Attack]:
    """Lower an attack spec (registered name or mapping) to ``(label, attack)``.

    Mapping keys: ``name`` (required, a registered attack name), ``label``
    (display override, needed when the same attack appears twice), plus any
    constructor keyword arguments.  ``poison_range`` / ``true_poison_range``
    accept paper notation (e.g. ``"[C/2,C]"``) or a ``[low, high]`` pair, and
    ``distribution`` accepts a name or ``{"name": ..., **params}``.
    """
    name, label, params = _normalize_spec(spec if spec is not None else "none", "attack")
    for key in _RANGE_KEYS:
        if key in params:
            params[key] = _resolve_poison_range(params[key])
    if "distribution" in params:
        params["distribution"] = _resolve_distribution(params["distribution"])
    entry = ATTACKS.entry(name)
    return (label or entry.name, ATTACKS.create(name, **params))


def dataset_from_spec(
    spec: Any, n_samples: int, rng: RngLike = None
) -> Tuple[str, NumericalDataset]:
    """Lower a dataset spec (registered name or mapping) to ``(label, dataset)``.

    Mapping keys: ``name`` (required), ``label``, ``n_samples`` (defaults to
    the scenario population size), plus constructor keyword arguments.
    """
    name, label, params = _normalize_spec(spec, "dataset")
    n_samples = int(params.pop("n_samples", n_samples))
    entry = DATASETS.entry(name)
    dataset = DATASETS.create(name, n_samples=n_samples, rng=rng, **params)
    if not isinstance(dataset, NumericalDataset):
        raise ValueError(
            f"dataset {name!r} is categorical; scenarios sweep numerical "
            f"mean estimation"
        )
    return (label or entry.name, dataset)


def _unique_labels(pairs: Sequence[Tuple[str, Any]], what: str) -> Dict[str, Any]:
    mapping: Dict[str, Any] = {}
    for label, value in pairs:
        if label in mapping:
            raise ValueError(
                f"duplicate {what} label {label!r}; give each {what} spec a "
                f"distinct 'label'"
            )
        mapping[label] = value
    return mapping


#: top-level keys accepted in a scenario document
SCENARIO_KEYS = (
    "name",
    "description",
    "schemes",
    "epsilons",
    "attacks",
    "datasets",
    "gammas",
    "trials",
    "n_trials",
    "seed",
    "epsilon_min",
    "batched",
    "chunk_size",
    "collect_workers",
    "probe_strategy",
    "backend",
    "protocol",
    "sketch_rows",
    "sketch_width",
    "population",
)

#: keys accepted under ``population``
POPULATION_KEYS = ("n_users", "gamma", "input_domain")


@dataclass
class ScenarioSpec:
    """A declarative cross-grid workload over registered components.

    The sweep grid is ``datasets x attacks x (gammas) x epsilons``, with every
    scheme evaluated at each point (the scheme axis of the emitted records).

    Attributes
    ----------
    name:
        Scenario identifier, used for run artifacts.
    schemes:
        Scheme specs (names or mappings — see
        :func:`~repro.simulation.schemes.scheme_from_spec`).
    epsilons:
        The privacy-budget grid.
    attacks, datasets:
        Attack / dataset specs (names or mappings).
    gammas:
        Optional Byzantine-proportion grid; when given it becomes a sweep
        axis, otherwise the constant ``gamma`` applies.
    n_users, n_trials, gamma, seed:
        Population scale, trials per point, default Byzantine proportion and
        master seed.
    epsilon_min:
        Probing budget floor forwarded to DAP-style schemes.
    input_domain:
        Mechanism input domain.
    batched:
        Use the stacked-trials fast path of the engine.
    chunk_size:
        Run every trial through the streaming collection path with this
        report chunk size, so memory is bounded by the chunk size instead of
        the population — the knob that lets a scenario declare
        ``"population": {"n_users": 5000000}`` and still run.  Mutually
        exclusive with ``batched``.
    collect_workers:
        Run every trial through the sharded collection path with this many
        shard workers, so one collection round uses that many cores.
        Records are bit-identical for any positive value, so this is a pure
        execution detail: it is excluded from :meth:`document` (and hence
        the resume digest), exactly like the executor's ``n_workers``.
        Mutually exclusive with ``batched`` and ``chunk_size``.
    probe_strategy:
        Override every probing scheme's hypothesis-evaluation strategy
        (``"batched"`` / ``"cold"``; ``None`` keeps the scheme defaults).
        An execution detail like ``collect_workers`` — probe selections are
        strategy-invariant — so it is likewise excluded from
        :meth:`document` and the resume digest, and recorded only as
        artifact provenance.
    backend:
        Array-compute backend the run executes under (see
        :data:`repro.backends.BACKENDS`); ``None`` keeps the process default
        (the bit-stable ``"numpy"`` reference).  An execution detail like
        ``probe_strategy`` — excluded from :meth:`document` and the resume
        digest, recorded only in ``meta.execution`` — though the fast
        backends draw statistically equivalent (not bit-identical) samples.
    protocol:
        Trust model every scheme runs under (see
        :data:`repro.protocol.PROTOCOL_NAMES`); the default ``"local"`` is
        the classical local model.  An **identity** knob (unlike
        ``backend``): the shuffle model changes what the adversary can
        observe, so when it is not ``"local"`` it enters :meth:`document`
        and the resume digest.  Leaving it at the default keeps digests of
        existing scenarios unchanged.
    sketch_rows, sketch_width:
        Count-sketch geometry for sketch-backed categorical components.
        **Identity** knobs (unlike ``backend``): the sketch's hash rows and
        width determine every report bit, so when set they are part of
        :meth:`document` and the resume digest.  ``None`` (the default)
        leaves them out of the document entirely, keeping digests of
        existing non-sketch scenarios unchanged.
    """

    name: str
    schemes: Sequence[Any]
    epsilons: Sequence[float]
    attacks: Sequence[Any] = ("none",)
    datasets: Sequence[Any] = ("Uniform",)
    gammas: Sequence[float] | None = None
    n_users: int = 20_000
    n_trials: int = 3
    gamma: float = 0.25
    seed: int = 0
    epsilon_min: float = 1.0 / 16.0
    input_domain: Tuple[float, float] = (-1.0, 1.0)
    batched: bool = False
    chunk_size: int | None = None
    collect_workers: int | None = None
    probe_strategy: str | None = None
    backend: str | None = None
    protocol: str = "local"
    sketch_rows: int | None = None
    sketch_width: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise ValueError("scenario needs a non-empty 'name'")
        self.schemes = tuple(self.schemes)
        self.epsilons = tuple(float(epsilon) for epsilon in self.epsilons)
        self.attacks = tuple(self.attacks)
        self.datasets = tuple(self.datasets)
        for label, axis in (
            ("schemes", self.schemes),
            ("epsilons", self.epsilons),
            ("attacks", self.attacks),
            ("datasets", self.datasets),
        ):
            if not axis:
                raise ValueError(f"scenario {self.name!r} has an empty {label!r} axis")
        if any(epsilon <= 0 for epsilon in self.epsilons):
            raise ValueError(f"epsilons must be positive, got {self.epsilons}")
        check_integer(self.n_users, "n_users", minimum=10)
        check_integer(self.n_trials, "n_trials", minimum=1)
        check_fraction(self.gamma, "gamma")
        if self.gammas is not None:
            self.gammas = tuple(
                check_fraction(float(g), "gammas entry") for g in self.gammas
            )
            if not self.gammas:
                raise ValueError(f"scenario {self.name!r} has an empty 'gammas' grid")
        self.input_domain = (float(self.input_domain[0]), float(self.input_domain[1]))
        self.seed = int(self.seed)
        if self.chunk_size is not None:
            self.chunk_size = check_integer(self.chunk_size, "chunk_size", minimum=1)
            if self.batched:
                raise ValueError(
                    f"scenario {self.name!r} sets both 'batched' and "
                    f"'chunk_size'; the stacked-trials and streaming paths "
                    f"are mutually exclusive"
                )
        if self.collect_workers is not None:
            self.collect_workers = check_integer(
                self.collect_workers, "collect_workers", minimum=1
            )
            if self.batched or self.chunk_size is not None:
                raise ValueError(
                    f"scenario {self.name!r} sets 'collect_workers' alongside "
                    f"'batched'/'chunk_size'; the sharded, stacked-trials and "
                    f"streaming paths are mutually exclusive"
                )
        if self.probe_strategy is not None:
            check_probe_strategy(self.probe_strategy)
        if self.backend is not None:
            check_backend(self.backend)
        check_protocol(self.protocol)
        if self.sketch_rows is not None:
            self.sketch_rows = check_integer(self.sketch_rows, "sketch_rows", minimum=1)
        if self.sketch_width is not None:
            self.sketch_width = check_integer(
                self.sketch_width, "sketch_width", minimum=2
            )

    # ------------------------------------------------------------------
    # construction from documents
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a scenario from a parsed JSON document (strict keys)."""
        if not isinstance(payload, Mapping):
            raise TypeError(f"scenario document must be a mapping, got {payload!r}")
        unknown = sorted(set(payload) - set(SCENARIO_KEYS))
        if unknown:
            raise ValueError(
                f"unknown scenario keys {unknown}; allowed: {', '.join(SCENARIO_KEYS)}"
            )
        missing = [key for key in ("name", "schemes", "epsilons") if key not in payload]
        if missing:
            raise ValueError(f"scenario document is missing {missing}")
        if "trials" in payload and "n_trials" in payload:
            raise ValueError("give either 'trials' or 'n_trials', not both")
        population = dict(payload.get("population", {}))
        unknown = sorted(set(population) - set(POPULATION_KEYS))
        if unknown:
            raise ValueError(
                f"unknown population keys {unknown}; allowed: "
                f"{', '.join(POPULATION_KEYS)}"
            )
        kwargs: Dict[str, Any] = {
            "name": payload["name"],
            "schemes": payload["schemes"],
            "epsilons": payload["epsilons"],
        }
        for key in ("description", "attacks", "datasets", "gammas", "seed",
                    "epsilon_min", "batched", "chunk_size", "collect_workers",
                    "probe_strategy", "backend", "protocol", "sketch_rows",
                    "sketch_width"):
            if key in payload:
                kwargs[key] = payload[key]
        n_trials = payload.get("trials", payload.get("n_trials"))
        if n_trials is not None:
            kwargs["n_trials"] = n_trials
        for key in ("n_users", "gamma", "input_domain"):
            if key in population:
                kwargs[key] = population[key]
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "ScenarioSpec":
        """Load a scenario from a JSON file."""
        with open(path) as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(f"{os.fspath(path)}: invalid JSON ({error})") from None
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def document(self) -> Dict[str, Any]:
        """The scenario as a canonical JSON-style document.

        Captures every knob that affects results — including seed,
        epsilon_min and per-component params — so its digest identifies the
        scenario for artifact resume.  Execution details (``chunk_size``,
        ``collect_workers``, ``probe_strategy``, ``backend``) are
        deliberately excluded, like the executor's ``n_workers``: completed
        records are reusable verbatim whichever collection path computes the
        rest, so a run started in memory must stay resumable with
        ``--chunk-size``, ``--collect-workers``, ``--probe-strategy`` or
        ``--backend`` set.

        The sketch geometry knobs are the opposite: they change report bits,
        so when set they enter the document (and digest) — but only when
        set, so non-sketch scenario digests are stable across versions.  The
        ``protocol`` trust model follows the same pattern: it joins the
        document only when it is not the default ``"local"``.
        """
        document = {
            "name": self.name,
            "description": self.description,
            "schemes": list(self.schemes),
            "epsilons": list(self.epsilons),
            "attacks": list(self.attacks),
            "datasets": list(self.datasets),
            "gammas": None if self.gammas is None else list(self.gammas),
            "population": {
                "n_users": self.n_users,
                "gamma": self.gamma,
                "input_domain": list(self.input_domain),
            },
            "n_trials": self.n_trials,
            "seed": self.seed,
            "epsilon_min": self.epsilon_min,
            "batched": self.batched,
        }
        if self.protocol != "local":
            document["protocol"] = self.protocol
        if self.sketch_rows is not None:
            document["sketch_rows"] = self.sketch_rows
        if self.sketch_width is not None:
            document["sketch_width"] = self.sketch_width
        return document

    def digest(self) -> str:
        """Stable hash of :meth:`document` (part of the spec fingerprint)."""
        payload = json.dumps(self.document(), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_experiment_spec(self, rng: RngLike = None) -> ExperimentSpec:
        """Lower the scenario to an engine :class:`ExperimentSpec`.

        ``rng`` (default: a generator seeded with ``self.seed``) is consumed
        to sample the datasets in listed order; pass the same generator on to
        :func:`~repro.engine.run_experiment` to reproduce
        :func:`run_scenario` exactly.
        """
        rng = ensure_rng(rng if rng is not None else self.seed)
        datasets = _unique_labels(
            [dataset_from_spec(spec, self.n_users, rng) for spec in self.datasets],
            "dataset",
        )
        attacks = _unique_labels(
            [attack_from_spec(spec) for spec in self.attacks], "attack"
        )
        scheme_factory = SchemesFromSpecs(self.schemes, epsilon_min=self.epsilon_min)
        # scheme display names key the resumable artifact (per point), so two
        # schemes resolving to the same name would corrupt resumed runs
        probe_point = {"epsilon": self.epsilons[0]}
        _unique_labels(
            [(scheme.name, scheme) for scheme in scheme_factory(probe_point)],
            "scheme",
        )
        gammas = self.gammas
        points: List[Dict[str, Any]] = [
            {
                "dataset": dataset_label,
                "attack": attack_label,
                **({} if gammas is None else {"gamma": gamma}),
                "epsilon": epsilon,
            }
            for dataset_label in datasets
            for attack_label in attacks
            for gamma in (gammas if gammas is not None else (self.gamma,))
            for epsilon in self.epsilons
        ]
        return ExperimentSpec(
            name=self.name,
            description=self.description or f"scenario {self.name}",
            points=points,
            n_users=self.n_users,
            n_trials=self.n_trials,
            gamma=PointKey("gamma") if gammas is not None else self.gamma,
            scheme_factory=scheme_factory,
            attack_factory=AttackLookup(attacks),
            dataset_factory=DatasetLookup(datasets),
            input_domain=self.input_domain,
            batched=self.batched,
            chunk_size=self.chunk_size,
            collect_workers=self.collect_workers,
            probe_strategy=self.probe_strategy,
            backend=self.backend,
            protocol=self.protocol if self.protocol != "local" else None,
            seed=self.seed,
            fingerprint_extra={"scenario_digest": self.digest()},
        )


def run_scenario(
    scenario: ScenarioSpec,
    rng: RngLike = None,
    n_workers: int | str | None = None,
    store_path: str | os.PathLike | None = None,
    resume: bool = True,
    progress: "Callable[[int, int], None] | None" = None,
    profile: bool = False,
) -> List[SweepRecord]:
    """Execute a scenario through the parallel executor and run store.

    One master generator (seeded from ``scenario.seed`` unless ``rng`` is
    given) drives dataset sampling and the executor's seed matrix, so records
    are bit-identical at any worker count and to the equivalent programmatic
    ``to_experiment_spec`` + ``run_experiment`` call.

    An ``rng`` override changes the records without changing the scenario
    document, so it is folded into the artifact fingerprint: an integer seed
    is recorded as-is, while an opaque generator (whose stream the document
    cannot identify) gets a one-off token — its artifact is written but can
    never be resumed, and it never matches a seed-identified artifact.
    """
    master = ensure_rng(rng if rng is not None else scenario.seed)
    spec = scenario.to_experiment_spec(rng=master)
    if rng is not None:
        if isinstance(rng, (int, np.integer)):
            token = str(int(rng))
        else:
            token = f"opaque-{os.urandom(8).hex()}"
        spec.fingerprint_extra = {**spec.fingerprint_extra, "rng_override": token}
    return run_experiment(
        spec,
        rng=master,
        n_workers=n_workers,
        store_path=store_path,
        resume=resume,
        progress=progress,
        profile=profile,
    )


def format_scenario_records(records: Sequence[SweepRecord]) -> str:
    """Render records as one epsilon x scheme MSE table per grid panel."""
    panel_keys = sorted(
        {key for record in records for key in record.point if key != "epsilon"}
    )
    panels = sorted(
        {tuple(record.point.get(key) for key in panel_keys) for record in records},
        key=str,
    )
    blocks = []
    for panel in panels:
        panel_records = [
            record
            for record in records
            if tuple(record.point.get(key) for key in panel_keys) == panel
        ]
        title = ", ".join(
            f"{key}={value}" for key, value in zip(panel_keys, panel)
        ) or "all points"
        table = records_to_table(panel_records, row_key="epsilon")
        blocks.append(f"## {title} (MSE per scheme)\n" + format_table(table, "epsilon"))
    return "\n\n".join(blocks)


__all__ = [
    "ScenarioSpec",
    "run_scenario",
    "attack_from_spec",
    "dataset_from_spec",
    "format_scenario_records",
    "POISON_DISTRIBUTIONS",
    "SCENARIO_KEYS",
    "POPULATION_KEYS",
]
