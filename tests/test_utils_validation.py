"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_in_interval,
    check_fraction,
    check_in_interval,
    check_integer,
    check_positive,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0.0, "x")

    def test_accepts_zero_when_not_strict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", strict=False)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")
        with pytest.raises(ValueError):
            check_positive(float("inf"), "x")


class TestCheckFraction:
    def test_accepts_bounds_inclusive(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0

    def test_rejects_bounds_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f", inclusive=False)
        with pytest.raises(ValueError):
            check_fraction(1.0, "f", inclusive=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction(1.5, "f")


class TestCheckInInterval:
    def test_accepts_inside(self):
        assert check_in_interval(0.5, 0, 1, "x") == 0.5

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_interval(2.0, 0, 1, "x")

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_interval(0.0, 0, 1, "x", inclusive=False)


class TestCheckArrayInInterval:
    def test_accepts_and_clips_epsilon_excursions(self):
        out = check_array_in_interval([0.0, 1.0 + 1e-12], 0, 1, "a")
        assert out.max() <= 1.0

    def test_rejects_far_outside(self):
        with pytest.raises(ValueError):
            check_array_in_interval([0.0, 2.0], 0, 1, "a")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_array_in_interval([np.nan], 0, 1, "a")

    def test_empty_ok(self):
        assert check_array_in_interval([], 0, 1, "a").size == 0


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        out = check_probability_vector([0.25, 0.75], "p")
        np.testing.assert_allclose(out.sum(), 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector([-0.1, 1.1], "p")

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.2, 0.2], "p")

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_probability_vector([[0.5, 0.5]], "p")


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer(5, "n") == 5

    def test_accepts_numpy_integer(self):
        assert check_integer(np.int64(5), "n") == 5

    def test_rejects_float(self):
        with pytest.raises(ValueError):
            check_integer(5.0, "n")

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            check_integer(True, "n")

    def test_minimum_enforced(self):
        with pytest.raises(ValueError):
            check_integer(1, "n", minimum=2)
