"""Named-component registries: the scenario layer's lookup tables.

Every pluggable piece of the reproduction — LDP mechanisms, Byzantine
attacks, defences, estimation schemes, datasets — registers itself here under
a stable, case-insensitive name.  The scenario layer (:mod:`repro.scenario`),
the ``python -m repro`` CLI and the registry-driven factories in
:mod:`repro.engine.factories` construct components exclusively through these
tables, so a new scheme/attack/defence combination is a config edit, not a
source edit.

Registration happens at import time of the component modules::

    from repro.registry import DEFENSES

    @DEFENSES.register("Trimming")
    class TrimmingDefense(Defense):
        ...

Lookups (``get`` / ``create`` / ``names`` / ``in``) lazily import every
component module first (:func:`load_components`), so callers never see a
half-populated table just because they imported :mod:`repro.registry` alone.
This module deliberately imports nothing from the rest of the package at
module level — it is a leaf every component module can depend on.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Tuple

#: modules whose import populates the registries (imported lazily on first
#: lookup; order is import-dependency friendly but otherwise arbitrary)
_COMPONENT_MODULES = (
    "repro.ldp",
    "repro.attacks",
    "repro.defenses",
    "repro.datasets.registry",
    "repro.simulation.schemes",
    "repro.protocol",
)

_components_loaded = False
_components_loading = False


def load_components() -> None:
    """Import every component module so all registries are fully populated.

    Idempotent; called automatically by every registry lookup.  A separate
    in-progress guard keeps a lookup made during component import (which
    would re-enter this function) from recursing, while a failed import
    leaves the loaded flag unset so the next lookup retries and re-raises
    instead of silently serving a half-populated table.
    """
    global _components_loaded, _components_loading
    if _components_loaded or _components_loading:
        return
    _components_loading = True
    try:
        for module in _COMPONENT_MODULES:
            importlib.import_module(module)
        _components_loaded = True
    finally:
        _components_loading = False


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component.

    Attributes
    ----------
    name:
        Display name as registered (e.g. ``"DAP-EMF*"``); the lookup key is
        its lower-cased form.
    factory:
        The class or callable that builds the component.
    aliases:
        Additional accepted (case-insensitive) names.
    defaults:
        Keyword defaults merged *under* caller kwargs by :meth:`Registry.create`.
    metadata:
        Free-form tags (e.g. ``kind="numerical"`` for mechanisms).
    """

    name: str
    factory: Callable[..., Any]
    aliases: Tuple[str, ...] = ()
    defaults: Mapping[str, Any] = field(default_factory=dict)
    metadata: Mapping[str, Any] = field(default_factory=dict)


class Registry:
    """A case-insensitive name -> factory table with aliases and defaults."""

    def __init__(self, kind: str) -> None:
        #: singular component label used in error messages (e.g. ``"attack"``)
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}
        self._index: Dict[str, str] = {}  # any accepted key -> canonical key

    @staticmethod
    def canonical(name: str) -> str:
        """The lookup key for a name."""
        return name.strip().lower()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        *,
        aliases: Tuple[str, ...] = (),
        defaults: Mapping[str, Any] | None = None,
        **metadata: Any,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering a factory under ``name`` (and ``aliases``)."""

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            entry = RegistryEntry(
                name=name,
                factory=factory,
                aliases=tuple(aliases),
                defaults=dict(defaults or {}),
                metadata=dict(metadata),
            )
            key = self.canonical(name)
            for accepted in (key, *(self.canonical(alias) for alias in aliases)):
                claimed = self._index.get(accepted)
                if claimed is not None and self._entries[claimed].factory is not factory:
                    raise ValueError(
                        f"{self.kind} name {accepted!r} is already registered "
                        f"to {self._entries[claimed].name!r}"
                    )
                self._index[accepted] = key
            self._entries[key] = entry
            return factory

        return decorator

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def entry(self, name: str) -> RegistryEntry:
        """The full entry for ``name``; ``KeyError`` lists registered names."""
        load_components()
        key = self._index.get(self.canonical(name))
        if key is None:
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered {self.kind}s: "
                f"{', '.join(self.names())}"
            )
        return self._entries[key]

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name``."""
        return self.entry(name).factory

    def create(self, name: str, **kwargs: Any) -> Any:
        """Build the component, merging registered defaults under ``kwargs``."""
        entry = self.entry(name)
        return entry.factory(**{**entry.defaults, **kwargs})

    def names(self) -> Tuple[str, ...]:
        """Sorted canonical (lower-case) names, aliases excluded."""
        load_components()
        return tuple(sorted(self._entries))

    def entries(self) -> Tuple[RegistryEntry, ...]:
        """All entries in canonical-name order (for listings)."""
        load_components()
        return tuple(self._entries[key] for key in sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        load_components()
        return isinstance(name, str) and self.canonical(name) in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        load_components()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry(kind={self.kind!r}, n={len(self._entries)})"


#: LDP perturbation mechanisms (``kind`` metadata: "numerical"/"categorical")
MECHANISMS = Registry("mechanism")
#: Byzantine attack strategies
ATTACKS = Registry("attack")
#: mean-estimation defences (each also usable as a single-round scheme)
DEFENSES = Registry("defense")
#: estimation schemes that are more than one defence round (DAP, Baseline)
SCHEMES = Registry("scheme")
#: evaluation datasets
DATASETS = Registry("dataset")
#: collection trust models (local / shuffle transports)
PROTOCOLS = Registry("protocol")

ALL_REGISTRIES: Mapping[str, Registry] = {
    "mechanisms": MECHANISMS,
    "attacks": ATTACKS,
    "defenses": DEFENSES,
    "schemes": SCHEMES,
    "datasets": DATASETS,
    "protocols": PROTOCOLS,
}

__all__ = [
    "Registry",
    "RegistryEntry",
    "load_components",
    "MECHANISMS",
    "ATTACKS",
    "DEFENSES",
    "SCHEMES",
    "DATASETS",
    "PROTOCOLS",
    "ALL_REGISTRIES",
]
