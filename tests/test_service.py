"""Tests for the continuous-service runtime (``repro.service``).

The load-bearing guarantees:

* determinism — window ``w`` is a pure function of ``(spec, w)``, so fresh
  re-runs, sharded runs and kill/resume runs all produce bit-identical
  window results;
* checkpoint safety — corrupt or foreign checkpoints raise ``ValueError``
  instead of silently resuming the wrong stream;
* warm-started probing — same side selections as cold probing, fewer EM
  iterations once the stream reaches steady state;
* change detection — a mid-stream attack onset is flagged within a couple
  of windows, and an attack-free stream is never flagged.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.backends import use_backend
from repro.service import (
    CHECKPOINT_VERSION,
    CusumDetector,
    ServiceSpec,
    WindowedAggregationService,
    load_checkpoint,
    run_service,
    write_checkpoint,
)

SMALL = dict(
    name="svc_test",
    epsilon=1.0,
    epsilon_min=0.25,
    window_size=500,
    n_windows=5,
    dataset="Uniform",
    attack={"name": "bba", "poison_range": "[C/2,C]"},
    gamma=0.2,
    attack_start=0,
    seed=11,
    detector={"warmup": 2},
)


def small_spec(**overrides) -> ServiceSpec:
    return ServiceSpec(**{**SMALL, **overrides})


def deterministic(result):
    return [row.deterministic_view() for row in result.windows]


@pytest.fixture(scope="module")
def small_run():
    return run_service(small_spec())


class TestServiceSpec:
    def test_digest_ignores_execution_details(self):
        base = small_spec()
        execution = small_spec(
            backend="fast", collect_shards=4, collect_workers=2, checkpoint_every=3
        )
        assert execution.digest() == base.digest()

    def test_digest_pins_identity_knobs(self):
        base = small_spec()
        for overrides in (
            {"seed": 12},
            {"window_size": 600},
            {"n_windows": 6},
            {"warm_probe": False},
            {"probe_strategy": "cold"},
            {"detector": {"warmup": 3}},
            {"gamma": 0.25},
            {"attack_start": 2},
        ):
            assert small_spec(**overrides).digest() != base.digest(), overrides

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown service keys"):
            ServiceSpec.from_mapping({**SMALL, "n_wndows": 3})

    def test_unknown_detector_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown detector keys"):
            small_spec(detector={"warmup": 2, "thresold": 3.0})

    def test_validation(self):
        with pytest.raises(ValueError, match="window_size"):
            small_spec(window_size=1)
        with pytest.raises(ValueError, match="n_windows"):
            small_spec(n_windows=0)
        with pytest.raises(ValueError, match="gamma"):
            small_spec(gamma=1.5)
        with pytest.raises(ValueError, match="input_domain"):
            small_spec(input_domain=(1.0, -1.0))

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "svc.json"
        path.write_text(json.dumps(SMALL))
        assert ServiceSpec.from_file(str(path)).digest() == small_spec().digest()


class TestCusumDetector:
    def test_warmup_never_flags(self):
        detector = CusumDetector(warmup=3, threshold=2.0, min_sigma=0.01)
        assert not any(detector.update(w, 100.0) for w in range(3))
        assert detector.calibrated and not detector.flagged

    def test_flags_on_sustained_shift_and_is_sticky(self):
        detector = CusumDetector(warmup=3, threshold=4.0, drift=1.0, min_sigma=0.01)
        for w in range(3):
            detector.update(w, 0.0)
        assert detector.update(3, 0.1)  # 10 sigma - drift > threshold
        assert detector.flagged_window == 3
        assert not detector.update(4, 0.1)  # sticky: no re-raise
        assert detector.flagged_window == 3

    def test_benign_noise_decays(self):
        detector = CusumDetector(warmup=4, threshold=8.0, drift=1.0, min_sigma=0.05)
        rng = np.random.default_rng(0)
        values = rng.normal(0.0, 0.05, size=50)
        assert not any(detector.update(w, v) for w, v in enumerate(values))

    def test_state_round_trip_continues_bit_identically(self):
        rng = np.random.default_rng(1)
        values = list(rng.normal(0.0, 0.02, size=20)) + [0.5, 0.5]
        one_shot = CusumDetector(warmup=4)
        for w, v in enumerate(values):
            one_shot.update(w, v)
        chained = CusumDetector(warmup=4)
        for w, v in enumerate(values):
            # snapshot through real JSON before every update
            chained = CusumDetector.from_state(
                json.loads(json.dumps(chained.state_dict()))
            )
            chained.update(w, v)
        assert chained.state_dict() == one_shot.state_dict()

    def test_from_state_rejects_corrupt(self):
        good = CusumDetector().state_dict()
        with pytest.raises(ValueError, match="missing keys"):
            CusumDetector.from_state({k: v for k, v in good.items() if k != "m2"})
        with pytest.raises(ValueError, match="finite"):
            CusumDetector.from_state({**good, "mean": float("nan")})
        with pytest.raises(ValueError, match="mapping"):
            CusumDetector.from_state([1, 2, 3])


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "c.json")
        payload = {
            "version": CHECKPOINT_VERSION,
            "digest": "abc",
            "next_window": 2,
            "cumulative": [],
            "windows": [],
            "detector": {},
        }
        write_checkpoint(path, payload)
        assert load_checkpoint(path) == payload
        assert load_checkpoint(path, expected_digest="abc") == payload

    def test_digest_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "c.json")
        write_checkpoint(
            path,
            {
                "version": CHECKPOINT_VERSION,
                "digest": "abc",
                "next_window": 0,
                "cumulative": [],
                "windows": [],
                "detector": {},
            },
        )
        with pytest.raises(ValueError, match="different service configuration"):
            load_checkpoint(path, expected_digest="xyz")

    def test_version_and_structure_rejected(self, tmp_path):
        path = str(tmp_path / "c.json")
        write_checkpoint(path, {"version": 999})
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)
        write_checkpoint(path, {"version": CHECKPOINT_VERSION})
        with pytest.raises(ValueError, match="missing key"):
            load_checkpoint(path)
        (tmp_path / "c.json").write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_checkpoint(path)

    def test_failed_write_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "c.json")
        with pytest.raises(TypeError):
            write_checkpoint(path, {"bad": object()})
        assert os.listdir(tmp_path) == []


def run_partial(spec, checkpoint_path, n_windows):
    """Run the first ``n_windows`` windows and checkpoint — a simulated kill."""
    service = WindowedAggregationService(spec, checkpoint_path=checkpoint_path)
    service._fresh_state()
    with use_backend(spec.backend):
        for window in range(n_windows):
            service._windows.append(service._run_window(window))
            service._next_window = window + 1
    write_checkpoint(checkpoint_path, service._checkpoint_payload())


class TestRuntimeDeterminism:
    def test_fresh_rerun_bit_identical(self, small_run):
        again = run_service(small_spec())
        assert deterministic(again) == deterministic(small_run)

    @pytest.mark.parametrize("kill_after", [1, 3])
    def test_kill_resume_bit_identical(self, small_run, tmp_path, kill_after):
        spec = small_spec()
        checkpoint = spec.default_checkpoint_path(str(tmp_path))
        run_partial(spec, checkpoint, kill_after)
        resumed = run_service(spec, checkpoint_path=checkpoint)
        assert resumed.resumed_from == kill_after
        assert deterministic(resumed) == deterministic(small_run)

    def test_resume_of_complete_run_recomputes_nothing(self, small_run, tmp_path):
        spec = small_spec()
        checkpoint = spec.default_checkpoint_path(str(tmp_path))
        first = run_service(spec, checkpoint_path=checkpoint)
        again = run_service(spec, checkpoint_path=checkpoint)
        assert again.resumed_from == spec.n_windows
        assert deterministic(again) == deterministic(first)
        assert again.profile.get("probe", 0.0) == 0.0  # nothing recomputed

    def test_sharded_collection_bit_identical(self, small_run):
        sharded = run_service(small_spec(collect_shards=3))
        assert deterministic(sharded) == deterministic(small_run)

    def test_fresh_flag_ignores_checkpoint(self, small_run, tmp_path):
        spec = small_spec()
        checkpoint = spec.default_checkpoint_path(str(tmp_path))
        run_partial(spec, checkpoint, 2)
        fresh = run_service(spec, checkpoint_path=checkpoint, resume=False)
        assert fresh.resumed_from == 0
        assert deterministic(fresh) == deterministic(small_run)


class TestCheckpointGuards:
    def test_foreign_checkpoint_rejected(self, tmp_path):
        spec = small_spec()
        checkpoint = spec.default_checkpoint_path(str(tmp_path))
        run_partial(spec, checkpoint, 1)
        other = small_spec(seed=12)
        with pytest.raises(ValueError, match="different service configuration"):
            run_service(other, checkpoint_path=checkpoint)

    def test_corrupt_cumulative_rejected(self, tmp_path):
        spec = small_spec()
        checkpoint = spec.default_checkpoint_path(str(tmp_path))
        run_partial(spec, checkpoint, 1)
        payload = load_checkpoint(checkpoint)
        payload["cumulative"][0]["histogram"]["counts"][0] += 1
        write_checkpoint(checkpoint, payload)
        with pytest.raises(ValueError, match="corrupt"):
            run_service(spec, checkpoint_path=checkpoint)

    def test_execution_drift_warns_but_stays_bit_identical(
        self, small_run, tmp_path
    ):
        spec = small_spec()
        checkpoint = spec.default_checkpoint_path(str(tmp_path))
        run_partial(spec, checkpoint, 2)
        drifted = small_spec(collect_shards=2, checkpoint_every=2)
        with pytest.warns(RuntimeWarning, match="different execution details"):
            resumed = run_service(drifted, checkpoint_path=checkpoint)
        assert deterministic(resumed) == deterministic(small_run)


class TestWarmProbing:
    def test_warm_and_cold_select_the_same_side(self):
        warm = run_service(small_spec(n_windows=6))
        cold = run_service(small_spec(n_windows=6, warm_probe=False))
        assert [r.poisoned_side for r in warm.windows] == [
            r.poisoned_side for r in cold.windows
        ]
        # steady state: warm needs fewer EM iterations than a cold solve
        assert sum(r.probe_iterations for r in warm.windows[2:]) < sum(
            r.probe_iterations for r in cold.windows[2:]
        )

    def test_first_window_is_always_cold(self, small_run):
        assert small_run.windows[0].warm is False
        assert all(row.warm for row in small_run.windows[1:])


class TestChangeDetection:
    def test_attack_onset_flagged_within_two_windows(self):
        spec = small_spec(
            window_size=2000,
            n_windows=8,
            gamma=0.25,
            attack_start=5,
            seed=7,
            detector={"warmup": 3},
        )
        result = run_service(spec)
        assert result.flagged_window is not None
        assert 5 <= result.flagged_window <= 7

    def test_attack_free_stream_never_flags(self):
        spec = small_spec(
            attack="none", gamma=0.0, n_windows=6, detector={"warmup": 2}
        )
        assert run_service(spec).flagged_window is None


class TestServeCli:
    @staticmethod
    def run_cli(*args, cwd=None):
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            cwd=cwd,
            env=env,
            timeout=300,
        )

    def test_serve_run_resume_and_artifacts(self, tmp_path, small_run):
        service_file = tmp_path / "svc.json"
        service_file.write_text(json.dumps(SMALL))
        results = tmp_path / "results.json"
        profile = tmp_path / "profile.json"
        first = self.run_cli(
            "serve",
            str(service_file),
            "--checkpoint-dir",
            str(tmp_path),
            "--results-out",
            str(results),
            "--profile-out",
            str(profile),
        )
        assert first.returncode == 0, first.stderr
        assert "svc_test" in first.stdout
        payload = json.loads(results.read_text())
        assert payload["digest"] == small_spec().digest()
        assert len(payload["windows"]) == SMALL["n_windows"]
        # the CLI stream matches the in-process API bit for bit
        for row, expected in zip(payload["windows"], small_run.windows):
            assert row["estimate"] == expected.estimate
            assert row["gamma_hat"] == expected.gamma_hat
        assert json.loads(profile.read_text()).get("probe", 0.0) > 0.0

        # a second invocation resumes the finished stream without recomputing
        second = self.run_cli(
            "serve", str(service_file), "--checkpoint-dir", str(tmp_path), "--quiet"
        )
        assert second.returncode == 0, second.stderr
        assert f"resumed from window {SMALL['n_windows']}" in second.stdout

    def test_serve_identity_override_errors_on_foreign_checkpoint(self, tmp_path):
        service_file = tmp_path / "svc.json"
        service_file.write_text(json.dumps({**SMALL, "n_windows": 2}))
        assert (
            self.run_cli(
                "serve", str(service_file), "--checkpoint-dir", str(tmp_path), "--quiet"
            ).returncode
            == 0
        )
        clash = self.run_cli(
            "serve",
            str(service_file),
            "--checkpoint-dir",
            str(tmp_path),
            "--windows",
            "3",
            "--quiet",
        )
        assert clash.returncode == 1
        assert "different service configuration" in clash.stderr
