"""Tests for the pluggable array-backend kernel layer.

Three contracts are pinned here:

1. **Selection semantics** — name validation, process-local active backend,
   scoped selection via ``use_backend`` (including the ``None`` passthrough),
   and the graceful numba-absent fallback.
2. **Reference bit-identity** — under the default ``"numpy"`` backend, every
   mechanism's ``perturb`` must reproduce the seed implementation draw for
   draw; the frozen copies of the seed samplers live in this file, so the
   dispatch seam can never silently change a single rounding.
3. **Fast-path statistical equivalence** — the ``"fast"`` backend draws
   different random numbers but must produce the same distributions, checked
   against the mechanisms' analytic bucket probabilities and by frequency
   round trips.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.backends import (
    ArrayBackend,
    BACKENDS,
    DEFAULT_BACKEND,
    check_backend,
    get_backend,
    numba_available,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.backends import base as backend_base
from repro.backends.fast import FastBackend, OUE_SPARSE_MIN_CELLS
from repro.collect.accumulators import CategoryCountAccumulator, HistogramAccumulator
from repro.ldp.ems import em_reconstruct
from repro.ldp.krr import KRandomizedResponse
from repro.ldp.olh import OptimizedLocalHashing, _hash_categories
from repro.ldp.oue import OptimizedUnaryEncoding
from repro.ldp.piecewise import PiecewiseMechanism
from repro.ldp.square_wave import SquareWaveMechanism
from repro.utils.discretization import BucketGrid

EPSILONS = (0.25, 1.0, 4.0)


@pytest.fixture(autouse=True)
def _restore_backend():
    """Backend selection is process-global; never leak it across tests."""
    yield
    set_backend(DEFAULT_BACKEND)


# ----------------------------------------------------------------------
# selection semantics
# ----------------------------------------------------------------------
class TestSelection:
    def test_known_names(self):
        assert BACKENDS == ("numpy", "fast", "numba")
        assert DEFAULT_BACKEND == "numpy"
        for name in BACKENDS:
            assert check_backend(name) == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend 'gpu'"):
            check_backend("gpu")
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_default_is_numpy_reference(self):
        assert get_backend().name == "numpy"
        assert type(get_backend()) is ArrayBackend

    def test_set_backend_switches_process_state(self):
        backend = set_backend("fast")
        assert backend is get_backend()
        assert get_backend().name == "fast"
        set_backend("numpy")
        assert get_backend().name == "numpy"

    def test_use_backend_scopes_and_restores(self):
        assert get_backend().name == "numpy"
        with use_backend("fast") as backend:
            assert backend.name == "fast"
            assert get_backend() is backend
        assert get_backend().name == "numpy"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("fast"):
                raise RuntimeError("boom")
        assert get_backend().name == "numpy"

    def test_use_backend_none_is_a_passthrough(self):
        set_backend("fast")
        with use_backend(None) as backend:
            assert backend is get_backend()
            assert backend.name == "fast"
        assert get_backend().name == "fast"

    def test_instances_are_shared(self):
        assert resolve_backend("fast") is resolve_backend("fast")
        assert resolve_backend("numpy") is resolve_backend("numpy")

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_numba_fallback_warns_once_and_degrades_to_numpy(self):
        from repro.backends.numba_backend import _reset_fallback_warning

        _reset_fallback_warning()
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            backend = resolve_backend("numba")
        # the fallback *is* the reference: bit-stable, honestly named
        assert backend.name == "numpy"
        # the warning is latched per process: later resolutions (a service
        # resolving its backend every window, a pool worker per task) stay
        # silent instead of repeating the same message
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with use_backend("numba") as active:
                assert active.name == "numpy"
            assert resolve_backend("numba").name == "numpy"
        _reset_fallback_warning()
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            resolve_backend("numba")

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numba_backend_resolves_when_available(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend = resolve_backend("numba")
        assert backend.name == "numba"


# ----------------------------------------------------------------------
# reference bit-identity: frozen copies of the seed samplers
# ----------------------------------------------------------------------
def _seed_pm_perturb(mechanism: PiecewiseMechanism, values, rng):
    """The seed implementation's PM sampler, frozen verbatim."""
    flat = np.asarray(values, dtype=float).ravel()
    left, right = mechanism.high_band(flat)
    n = flat.size
    outputs = np.empty(n, dtype=float)
    in_band = rng.random(n) < mechanism.high_prob
    n_in = int(in_band.sum())
    if n_in:
        u = rng.random(n_in)
        outputs[in_band] = left[in_band] + u * (right[in_band] - left[in_band])
    out_band = ~in_band
    n_out = int(out_band.sum())
    if n_out:
        l_out = left[out_band]
        r_out = right[out_band]
        left_len = l_out + mechanism.C
        right_len = mechanism.C - r_out
        total_len = left_len + right_len
        u = rng.random(n_out) * total_len
        take_left = u < left_len
        outputs[out_band] = np.where(
            take_left, -mechanism.C + u, r_out + (u - left_len)
        )
    return outputs


def _seed_sw_perturb(mechanism: SquareWaveMechanism, values, rng):
    """The seed implementation's SW sampler, frozen verbatim."""
    flat = np.asarray(values, dtype=float).ravel()
    b = mechanism.b
    n = flat.size
    out = np.empty(n, dtype=float)
    window_mass = 2.0 * b * mechanism._p_high
    in_window = rng.random(n) < window_mass
    n_in = int(in_window.sum())
    if n_in:
        out[in_window] = flat[in_window] + rng.uniform(-b, b, size=n_in)
    out_window = ~in_window
    n_out = int(out_window.sum())
    if n_out:
        v = flat[out_window]
        left_len = (v - b) - (-b)
        right_len = (1.0 + b) - (v + b)
        total_len = left_len + right_len
        u = rng.random(n_out) * total_len
        take_left = u < left_len
        out[out_window] = np.where(take_left, -b + u, v + b + (u - left_len))
    return out


def _seed_oue_perturb(mechanism: OptimizedUnaryEncoding, categories, rng):
    n = categories.size
    bits = rng.random((n, mechanism.n_categories)) < mechanism.q
    keep_one = rng.random(n) < mechanism.p
    bits[np.arange(n), categories] = keep_one
    return bits.astype(np.int8)


def _seed_olh_perturb(mechanism: OptimizedLocalHashing, categories, rng):
    n = categories.size
    seeds = rng.integers(0, 2**32 - 1, size=n, dtype=np.uint64)
    hashed = _hash_categories(categories, seeds, mechanism.g)
    keep = rng.random(n) < mechanism.p
    random_other = rng.integers(0, mechanism.g - 1, size=n)
    random_other = np.where(random_other >= hashed, random_other + 1, random_other)
    reports = np.where(keep, hashed, random_other)
    return np.column_stack([seeds.astype(np.int64), reports.astype(np.int64)])


def _seed_krr_perturb(mechanism: KRandomizedResponse, categories, rng):
    n = categories.size
    keep = rng.random(n) < mechanism.p
    random_other = rng.integers(0, mechanism.n_categories - 1, size=n)
    random_other = np.where(
        random_other >= categories, random_other + 1, random_other
    )
    return np.where(keep, categories, random_other)


class TestNumpyBitIdentity:
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_pm(self, epsilon, rng):
        mechanism = PiecewiseMechanism(epsilon)
        values = rng.uniform(-1.0, 1.0, 5000)
        got = mechanism.perturb(values, np.random.default_rng(42))
        want = _seed_pm_perturb(mechanism, values, np.random.default_rng(42))
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_sw(self, epsilon, rng):
        mechanism = SquareWaveMechanism(epsilon)
        values = rng.uniform(0.0, 1.0, 5000)
        got = mechanism.perturb(values, np.random.default_rng(42))
        want = _seed_sw_perturb(mechanism, values, np.random.default_rng(42))
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_oue(self, epsilon, rng):
        mechanism = OptimizedUnaryEncoding(epsilon, 12)
        categories = rng.integers(0, 12, 2000)
        got = mechanism.perturb(categories, np.random.default_rng(42))
        want = _seed_oue_perturb(mechanism, categories, np.random.default_rng(42))
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_olh(self, epsilon, rng):
        mechanism = OptimizedLocalHashing(epsilon, 12)
        categories = rng.integers(0, 12, 2000)
        got = mechanism.perturb(categories, np.random.default_rng(42))
        want = _seed_olh_perturb(mechanism, categories, np.random.default_rng(42))
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_krr(self, epsilon, rng):
        mechanism = KRandomizedResponse(epsilon, 12)
        categories = rng.integers(0, 12, 2000)
        got = mechanism.perturb(categories, np.random.default_rng(42))
        want = _seed_krr_perturb(mechanism, categories, np.random.default_rng(42))
        np.testing.assert_array_equal(got, want)

    def test_pm_perturb_stream(self, rng):
        """Streamed perturbation shares one RNG, exactly like the seed."""
        mechanism = PiecewiseMechanism(1.0)
        values = rng.uniform(-1.0, 1.0, 3000)
        chunks = [values[start : start + 777] for start in range(0, 3000, 777)]
        streamed = np.concatenate(
            list(mechanism.perturb_stream(chunks, np.random.default_rng(9)))
        )
        want = np.concatenate(
            [
                _seed_pm_perturb(mechanism, chunk, generator)
                for generator in [np.random.default_rng(9)]
                for chunk in chunks
            ]
        )
        np.testing.assert_array_equal(streamed, want)

    def test_explicit_numpy_backend_matches_default(self, rng):
        mechanism = PiecewiseMechanism(1.0)
        values = rng.uniform(-1.0, 1.0, 1000)
        default = mechanism.perturb(values, np.random.default_rng(3))
        with use_backend("numpy"):
            explicit = mechanism.perturb(values, np.random.default_rng(3))
        np.testing.assert_array_equal(default, explicit)


# ----------------------------------------------------------------------
# fast backend: statistical equivalence
# ----------------------------------------------------------------------
def _bucket_probabilities(reports: np.ndarray, edges: np.ndarray) -> np.ndarray:
    counts, _ = np.histogram(reports, bins=edges)
    return counts / reports.size


class TestFastStatisticalEquivalence:
    N = 200_000

    @pytest.mark.parametrize("epsilon", (0.5, 1.0, 2.0))
    def test_pm_matches_analytic_bucket_probabilities(self, epsilon):
        mechanism = PiecewiseMechanism(epsilon)
        values = np.full(self.N, 0.3)
        with use_backend("fast"):
            reports = mechanism.perturb(values, np.random.default_rng(11))
        assert reports.min() >= -mechanism.C and reports.max() <= mechanism.C
        edges = np.linspace(-mechanism.C, mechanism.C, 21)
        expected = mechanism.interval_probability_matrix(
            np.array([0.3]), edges
        )[:, 0]
        observed = _bucket_probabilities(reports, edges)
        np.testing.assert_allclose(observed, expected, atol=5e-3)

    @pytest.mark.parametrize("epsilon", (0.5, 1.0, 2.0))
    def test_sw_matches_analytic_bucket_probabilities(self, epsilon):
        mechanism = SquareWaveMechanism(epsilon)
        values = np.full(self.N, 0.7)
        with use_backend("fast"):
            reports = mechanism.perturb(values, np.random.default_rng(11))
        low, high = mechanism.output_domain
        assert reports.min() >= low and reports.max() <= high
        edges = np.linspace(low, high, 21)
        expected = mechanism.interval_probability_matrix(
            np.array([0.7]), edges
        )[:, 0]
        observed = _bucket_probabilities(reports, edges)
        np.testing.assert_allclose(observed, expected, atol=5e-3)

    def test_pm_moments(self):
        mechanism = PiecewiseMechanism(1.0)
        values = np.full(self.N, 0.3)
        with use_backend("fast"):
            reports = mechanism.perturb(values, np.random.default_rng(23))
        assert reports.mean() == pytest.approx(0.3, abs=0.02)
        assert reports.var() == pytest.approx(mechanism.variance(0.3), rel=0.02)

    def test_oue_bit_rates(self):
        mechanism = OptimizedUnaryEncoding(1.0, 16)
        categories = np.zeros(50_000, dtype=int)
        with use_backend("fast"):
            bits = mechanism.perturb(categories, np.random.default_rng(5))
        assert set(np.unique(bits)) <= {0, 1}
        assert bits[:, 0].mean() == pytest.approx(mechanism.p, abs=0.01)
        assert bits[:, 1:].mean() == pytest.approx(mechanism.q, abs=0.005)

    def test_oue_small_input_uses_dense_reference(self, rng):
        """Below the sparse threshold the fast OUE defers to the reference."""
        mechanism = OptimizedUnaryEncoding(1.0, 8)
        categories = rng.integers(0, 8, 100)
        assert categories.size * 8 < OUE_SPARSE_MIN_CELLS
        with use_backend("fast"):
            got = mechanism.perturb(categories, np.random.default_rng(2))
        want = mechanism.perturb(categories, np.random.default_rng(2))
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize(
        "mechanism_cls", (KRandomizedResponse, OptimizedLocalHashing,
                          OptimizedUnaryEncoding)
    )
    def test_frequency_roundtrip(self, mechanism_cls, rng):
        k = 24
        mechanism = mechanism_cls(2.0, k)
        probabilities = np.arange(1, k + 1, dtype=float)
        probabilities /= probabilities.sum()
        categories = rng.choice(k, size=100_000, p=probabilities)
        with use_backend("fast"):
            reports = mechanism.perturb(categories, np.random.default_rng(17))
            estimate = mechanism.estimate_frequencies(reports)
        np.testing.assert_allclose(estimate, probabilities, atol=0.02)

    def test_krr_keep_probability(self):
        mechanism = KRandomizedResponse(2.0, 4)
        with use_backend("fast"):
            out = mechanism.perturb(
                np.zeros(50_000, dtype=int), np.random.default_rng(1)
            )
        assert out.min() >= 0 and out.max() < 4
        assert np.mean(out == 0) == pytest.approx(mechanism.p, abs=0.01)
        # the flipped mass is uniform over the other categories
        flipped = out[out != 0]
        for category in (1, 2, 3):
            assert np.mean(flipped == category) == pytest.approx(1 / 3, abs=0.02)


# ----------------------------------------------------------------------
# OLH support counting (the O(k*n) blowup fix)
# ----------------------------------------------------------------------
class TestOlhSupportTiling:
    def _broadcast_support(self, mechanism, seeds, observed):
        """The pre-fix one-shot broadcast (reference for the tiled kernel)."""
        categories = np.arange(mechanism.n_categories)[:, np.newaxis]
        hashed = _hash_categories(categories, seeds[np.newaxis, :], mechanism.g)
        return (hashed == observed[np.newaxis, :]).sum(axis=1)

    @pytest.mark.parametrize("n_users", (1, 7, 100, 4096))
    @pytest.mark.parametrize("k", (2, 5, 24))
    def test_tiled_support_equals_broadcast(self, n_users, k, rng, monkeypatch):
        # a tiny tile forces many partial passes even at small n
        monkeypatch.setattr(backend_base, "OLH_SUPPORT_TILE_ELEMENTS", 64)
        mechanism = OptimizedLocalHashing(1.0, k)
        categories = rng.integers(0, k, n_users)
        reports = mechanism.perturb(categories, rng)
        seeds = reports[:, 0].astype(np.uint64)
        observed = reports[:, 1]
        tiled = get_backend().olh_support(
            seeds, observed, k, mechanism.g, _hash_categories
        )
        np.testing.assert_array_equal(
            tiled, self._broadcast_support(mechanism, seeds, observed)
        )

    def test_estimate_frequencies_unchanged_by_tile_size(self, rng, monkeypatch):
        mechanism = OptimizedLocalHashing(1.0, 10)
        categories = rng.integers(0, 10, 5000)
        reports = mechanism.perturb(categories, rng)
        full = mechanism.estimate_frequencies(reports)
        monkeypatch.setattr(backend_base, "OLH_SUPPORT_TILE_ELEMENTS", 32)
        tiled = mechanism.estimate_frequencies(reports)
        np.testing.assert_array_equal(full, tiled)

    def test_memory_stays_bounded(self, rng, monkeypatch):
        """The conceptual (k, n) hash grid must never materialise."""
        seen = []
        original = _hash_categories

        def spying(categories, seeds, domain):
            out = original(categories, seeds, domain)
            seen.append(out.size)
            return out

        mechanism = OptimizedLocalHashing(1.0, 64)
        categories = rng.integers(0, 64, 20_000)
        reports = mechanism.perturb(categories, rng)
        monkeypatch.setattr(backend_base, "OLH_SUPPORT_TILE_ELEMENTS", 1 << 12)
        get_backend().olh_support(
            reports[:, 0].astype(np.uint64), reports[:, 1], 64, mechanism.g, spying
        )
        assert max(seen) <= (1 << 12)


# ----------------------------------------------------------------------
# accumulators
# ----------------------------------------------------------------------
class TestAccumulatorBackends:
    def test_histogram_counts_identical_sum_close(self, rng):
        grid = BucketGrid(-1.0, 1.0, 32)
        values = rng.uniform(-1.0, 1.0, 10_000)
        chunks = np.array_split(values, 7)

        reference = HistogramAccumulator(grid, track_sum=True)
        for chunk in chunks:
            reference.update(chunk)
        with use_backend("fast"):
            fast = HistogramAccumulator(grid, track_sum=True)
            for chunk in chunks:
                fast.update(chunk)

        np.testing.assert_array_equal(fast.counts, reference.counts)
        assert fast.n_values == reference.n_values
        assert fast.sum == pytest.approx(reference.sum, rel=1e-12)

    def test_histogram_fast_state_roundtrip_and_merge(self, rng):
        grid = BucketGrid(0.0, 1.0, 8)
        with use_backend("fast"):
            a = HistogramAccumulator(grid, track_sum=True)
            a.update(rng.uniform(0, 1, 500))
            b = HistogramAccumulator.from_state(a.state_dict())
            a.merge(b)
        assert a.n_values == 1000
        assert a.sum == pytest.approx(2 * b.sum, rel=1e-12)

    def test_histogram_rejects_non_finite_on_both_backends(self):
        grid = BucketGrid(0.0, 1.0, 4)
        bad = np.array([0.5, np.nan])
        for name in ("numpy", "fast"):
            with use_backend(name):
                with pytest.raises(ValueError, match="finite"):
                    HistogramAccumulator(grid).update(bad)

    def test_category_counts_identical(self, rng):
        reports = rng.integers(0, 9, 5000)
        reference = CategoryCountAccumulator(9).update(reports)
        with use_backend("fast"):
            fast = CategoryCountAccumulator(9).update(reports)
        np.testing.assert_array_equal(fast.counts, reference.counts)

    @pytest.mark.parametrize("bad", ([-1, 2], [0, 9], [-3, 12]))
    def test_category_range_error_identical(self, bad):
        reports = np.asarray(bad)
        messages = []
        for name in ("numpy", "fast"):
            with use_backend(name):
                with pytest.raises(ValueError) as excinfo:
                    CategoryCountAccumulator(9).update(reports)
                messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert "category reports must lie in [0, 9)" in messages[0]


# ----------------------------------------------------------------------
# EM products are backend-routed but bit-identical on the numpy path
# ----------------------------------------------------------------------
class TestEmRouting:
    def test_em_reconstruct_identical_under_explicit_numpy(self, rng):
        transform = np.abs(rng.random((30, 10)))
        transform /= transform.sum(axis=0, keepdims=True)
        counts = rng.integers(0, 100, 30).astype(float)
        default = em_reconstruct(transform, counts)
        with use_backend("numpy"):
            explicit = em_reconstruct(transform, counts)
        np.testing.assert_array_equal(default.weights, explicit.weights)
        assert default.log_likelihood == explicit.log_likelihood

    def test_em_reconstruct_close_under_fast(self, rng):
        """Fast matmul is the same BLAS call today; keep this loose so a
        future fused kernel only needs statistical closeness."""
        transform = np.abs(rng.random((30, 10)))
        transform /= transform.sum(axis=0, keepdims=True)
        counts = rng.integers(0, 100, 30).astype(float)
        default = em_reconstruct(transform, counts)
        with use_backend("fast"):
            fast = em_reconstruct(transform, counts)
        np.testing.assert_allclose(fast.weights, default.weights, atol=1e-9)


# ----------------------------------------------------------------------
# spec / scenario integration
# ----------------------------------------------------------------------
class TestSpecIntegration:
    def test_scenario_rejects_unknown_backend(self):
        from repro.scenario import ScenarioSpec

        with pytest.raises(ValueError, match="unknown backend"):
            ScenarioSpec(
                name="x", schemes=["Ostrich"], epsilons=[1.0], backend="gpu"
            )

    def test_backend_excluded_from_scenario_digest(self):
        from repro.scenario import ScenarioSpec

        base = dict(name="x", schemes=["Ostrich"], epsilons=[1.0])
        plain = ScenarioSpec(**base)
        fast = ScenarioSpec(**base, backend="fast")
        assert plain.digest() == fast.digest()
        assert "backend" not in plain.document()

    def test_backend_excluded_from_spec_fingerprint(self):
        from repro.engine.factories import (
            AttackLookup,
            DatasetLookup,
            SchemesFromSpecs,
        )
        from repro.engine.spec import ExperimentSpec

        def build(backend):
            return ExperimentSpec(
                name="x",
                points=[{"epsilon": 1.0, "attack": "none", "dataset": "d"}],
                n_users=100,
                n_trials=1,
                scheme_factory=SchemesFromSpecs(["Ostrich"]),
                attack_factory=AttackLookup({"none": None}),
                dataset_factory=DatasetLookup(
                    {"d": __import__("repro.datasets", fromlist=["x"]).uniform_dataset(
                        100, rng=np.random.default_rng(0)
                    )}
                ),
                backend=backend,
            )

        assert build(None).fingerprint() == build("fast").fingerprint()

    def test_spec_rejects_unknown_backend(self):
        from repro.engine.spec import ExperimentSpec

        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentSpec(
                name="x",
                points=[{"epsilon": 1.0}],
                n_users=10,
                n_trials=1,
                scheme_factory=lambda point: [],
                attack_factory=lambda point: None,
                dataset_factory=lambda point: None,
                backend="gpu",
            )

    def test_run_scenario_backend_statistically_equivalent(self):
        from repro.scenario import ScenarioSpec, run_scenario

        doc = dict(
            name="backend_equiv",
            schemes=["DAP-EMF"],
            epsilons=[1.0],
            datasets=["Uniform"],
            attacks=["ima"],
            n_users=20_000,
            n_trials=2,
            gamma=0.25,
            seed=7,
        )
        reference = run_scenario(ScenarioSpec(**doc))
        fast = run_scenario(ScenarioSpec(**doc, backend="fast"))
        assert get_backend().name == "numpy"  # selection did not leak
        for ref_row, fast_row in zip(reference, fast):
            assert ref_row.scheme == fast_row.scheme
            # different draws, same estimator: errors agree in magnitude
            assert fast_row.mse == pytest.approx(ref_row.mse, rel=1.0, abs=5e-3)
