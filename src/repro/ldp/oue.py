"""Optimized Unary Encoding (OUE) frequency oracle of Wang et al.

Each user encodes their category as a one-hot bit vector of length ``k`` and
perturbs every bit independently: a ``1`` is kept with probability ``p = 1/2``
and a ``0`` is flipped to ``1`` with probability ``q = 1 / (e^eps + 1)``.  The
collector de-biases per-category support counts as in k-RR.

OUE is part of the frequency-oracle substrate referenced by the related-work
section; it lets the frequency-estimation DAP be exercised against an oracle
with a very different noise profile from k-RR.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backends import get_backend
from repro.ldp.base import CategoricalMechanism, MechanismError
from repro.registry import MECHANISMS
from repro.utils.rng import RngLike, ensure_rng

#: OUE materialises one bit per (user, category); domains past this make
#: even single-user reports wasteful and belong on the sketch route
OUE_MAX_CATEGORIES = 65536

#: cap on the ``n x k`` bit matrix a single ``perturb`` call may allocate
OUE_MAX_REPORT_CELLS = 1 << 27


@MECHANISMS.register("oue", kind="categorical")
class OptimizedUnaryEncoding(CategoricalMechanism):
    """OUE mechanism over categories ``0 .. k-1``."""

    def __init__(self, epsilon: float, n_categories: int) -> None:
        super().__init__(epsilon, n_categories)
        if self.n_categories > OUE_MAX_CATEGORIES:
            raise ValueError(
                f"n_categories={self.n_categories} exceeds the OUE limit "
                f"({OUE_MAX_CATEGORIES}): every report is a length-k bit "
                f"vector; use the 'count-sketch' mechanism for "
                f"high-cardinality domains"
            )
        exp_eps = math.exp(self.epsilon)
        #: probability of keeping a 1-bit
        self.p = 0.5
        #: probability of flipping a 0-bit to 1
        self.q = 1.0 / (exp_eps + 1.0)

    def perturb(self, categories: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb categories into bit matrices of shape ``(n, k)``."""
        rng = ensure_rng(rng)
        categories = self._validate_categories(categories).ravel()
        cells = categories.size * self.n_categories
        if cells > OUE_MAX_REPORT_CELLS:
            gib = cells / 2**30  # one byte per bit cell
            raise ValueError(
                f"OUE perturb would allocate an {categories.size} x "
                f"{self.n_categories} bit matrix (~{gib:.1f} GiB); chunk the "
                f"users or use the 'count-sketch' mechanism for "
                f"high-cardinality domains"
            )
        return get_backend().oue_sample(
            categories, self.n_categories, self.p, self.q, rng
        )

    def estimate_frequencies(self, reports: np.ndarray) -> np.ndarray:
        """Unbiased frequency estimates from perturbed bit matrices."""
        reports = np.asarray(reports)
        if reports.ndim != 2 or reports.shape[1] != self.n_categories:
            raise MechanismError(
                f"OUE reports must have shape (n, {self.n_categories}), got {reports.shape}"
            )
        n = reports.shape[0]
        if n == 0:
            raise MechanismError("cannot estimate frequencies from zero reports")
        support = reports.sum(axis=0).astype(float) / n
        return (support - self.q) / (self.p - self.q)

    def variance_per_report(self, frequency: float = 0.0) -> float:
        """Per-user variance of a frequency estimate (Wang et al., eq. for OUE)."""
        return (
            self.q * (1.0 - self.q) / (self.p - self.q) ** 2
            + frequency * (1.0 - frequency)
        )


__all__ = ["OptimizedUnaryEncoding", "OUE_MAX_CATEGORIES", "OUE_MAX_REPORT_CELLS"]
