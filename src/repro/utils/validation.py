"""Input validation helpers used across the library.

All helpers raise ``ValueError`` with a descriptive message naming the
offending argument, which keeps the public API errors consistent.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np


def check_positive(value: float, name: str, strict: bool = True) -> float:
    """Validate that ``value`` is a (strictly) positive finite number."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(value: float, name: str, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1) when not inclusive)."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_in_interval(
    value: float, low: float, high: float, name: str, inclusive: bool = True
) -> float:
    """Validate that ``value`` lies in the interval [low, high]."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if inclusive:
        if not low <= value <= high:
            raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    else:
        if not low < value < high:
            raise ValueError(f"{name} must be in ({low}, {high}), got {value}")
    return value


def check_array_in_interval(
    values: Iterable[float], low: float, high: float, name: str, atol: float = 1e-9
) -> np.ndarray:
    """Validate that every element of ``values`` lies within [low, high]."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    if arr.min() < low - atol or arr.max() > high + atol:
        raise ValueError(
            f"{name} must lie in [{low}, {high}], got range "
            f"[{arr.min():.6g}, {arr.max():.6g}]"
        )
    return np.clip(arr, low, high)


def check_probability_vector(values: Iterable[float], name: str, atol: float = 1e-6) -> np.ndarray:
    """Validate that ``values`` is a non-negative vector summing to one."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if np.any(arr < -atol):
        raise ValueError(f"{name} must be non-negative")
    total = float(arr.sum())
    if not math.isclose(total, 1.0, abs_tol=atol):
        raise ValueError(f"{name} must sum to 1, got {total:.6g}")
    return np.clip(arr, 0.0, None)


def check_integer(value: int, name: str, minimum: int | None = None) -> int:
    """Validate that ``value`` is an integer, optionally at least ``minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


__all__ = [
    "check_positive",
    "check_fraction",
    "check_in_interval",
    "check_array_in_interval",
    "check_probability_vector",
    "check_integer",
]
