"""Generic Expectation-Maximisation reconstruction (EM and EMS).

Both the Square Wave estimator (EMS, Li et al.) and the paper's EMF family are
instances of the same computation: given

* a column-stochastic *transition matrix* ``A`` of shape ``(d', K)`` where
  ``A[i, k] = Pr[report falls in output bucket i | latent component k]``, and
* observed output-bucket counts ``c`` of length ``d'``,

find the latent mixture weights ``F`` (length ``K``, summing to one) that
maximise the log-likelihood ``sum_i c_i * log((A @ F)_i)``.

The EM update is

* E-step:  ``P_k = F_k * sum_i c_i * A[i, k] / (A @ F)_i``
* M-step:  ``F_k = P_k / sum_j P_j``

EMF* and CEMF* only change the M-step (they renormalise the normal-user and
poison blocks separately), so :func:`em_reconstruct` accepts an optional
``m_step`` callback.  EMS adds a smoothing pass over the reconstructed
histogram after each M-step (binomial kernel ``[1, 2, 1] / 4``), which is what
``expectation_maximization_smoothing`` provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

MStep = Callable[[np.ndarray], np.ndarray]

#: minimum dense work saved per iteration (indicator columns x output rows)
#: before the split products beat plain BLAS; below this the gather/scatter
#: overhead dominates and the dense path is both faster and byte-stable with
#: the historical implementation
_INDICATOR_MIN_SAVINGS = 1 << 14


@dataclass
class EMResult:
    """Outcome of an EM reconstruction.

    Attributes
    ----------
    weights:
        Final latent mixture weights (length ``K``).
    log_likelihood:
        Log-likelihood at the final iterate.
    n_iterations:
        Number of EM iterations performed.
    converged:
        Whether the tolerance was reached before ``max_iter``.
    """

    weights: np.ndarray
    log_likelihood: float
    n_iterations: int
    converged: bool


def em_reconstruct(
    transform: np.ndarray,
    counts: np.ndarray,
    initial: Optional[np.ndarray] = None,
    max_iter: int = 10_000,
    tol: float = 1e-6,
    m_step: Optional[MStep] = None,
    fixed_zero: Optional[np.ndarray] = None,
    indicator_tail: Optional[np.ndarray] = None,
) -> EMResult:
    """Run EM on a latent-mixture reconstruction problem.

    Parameters
    ----------
    transform:
        ``(d', K)`` transition matrix; every column should sum to (at most) 1.
    counts:
        Observed counts per output bucket, length ``d'``.
    initial:
        Optional initial weights; defaults to uniform over the ``K`` components.
    max_iter, tol:
        Convergence is declared when the absolute log-likelihood improvement
        drops below ``tol``.
    m_step:
        Optional replacement for the default "normalise to one" M-step.  The
        callback receives the un-normalised responsibilities ``P`` and must
        return the next weight vector.
    fixed_zero:
        Optional boolean mask of components forced to zero throughout (used by
        CEMF* bucket suppression).
    indicator_tail:
        Optional row indices declaring that the trailing ``len(indicator_tail)``
        columns of ``transform`` are one-hot indicator columns: column
        ``K - P + j`` is 1 at row ``indicator_tail[j]`` and 0 elsewhere (the
        EMF poison block and the k-RR poison columns have exactly this shape).
        Both per-iteration matrix products then split into a dense product
        over the leading columns plus a gather/scatter over the indicator
        rows, cutting the cost from ``O(d' * K)`` to ``O(d' * (K - P))`` —
        the dominant cost of large-population EMF runs, where the poison
        block holds half the output grid.  The indices must be unique and the
        declared columns genuinely one-hot (spot-checked).

    Returns
    -------
    EMResult
    """
    transform = np.asarray(transform, dtype=float)
    counts = np.asarray(counts, dtype=float)
    if transform.ndim != 2:
        raise ValueError(f"transform must be 2-D, got shape {transform.shape}")
    d_out, n_components = transform.shape
    if counts.shape != (d_out,):
        raise ValueError(
            f"counts must have length {d_out} (transform rows), got {counts.shape}"
        )
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    if counts.sum() == 0:
        raise ValueError("counts must contain at least one observation")

    if initial is None:
        weights = np.full(n_components, 1.0 / n_components)
    else:
        weights = np.asarray(initial, dtype=float).copy()
        if weights.shape != (n_components,):
            raise ValueError(
                f"initial weights must have length {n_components}, got {weights.shape}"
            )
        total = weights.sum()
        if total <= 0:
            raise ValueError("initial weights must have positive mass")
        weights = weights / total

    zero_mask = None
    if fixed_zero is not None:
        zero_mask = np.asarray(fixed_zero, dtype=bool)
        if zero_mask.shape != (n_components,):
            raise ValueError("fixed_zero mask must align with the number of components")
        weights = weights.copy()
        weights[zero_mask] = 0.0
        total = weights.sum()
        if total <= 0:
            raise ValueError("fixed_zero mask suppresses every component")
        weights /= total

    if indicator_tail is not None and (
        np.asarray(indicator_tail).size * d_out < _INDICATOR_MIN_SAVINGS
    ):
        # too small to pay for the split products; a deterministic function
        # of the problem shape, so any two runs on the same statistics still
        # take the same branch
        indicator_tail = None
    if indicator_tail is not None:
        tail = np.asarray(indicator_tail, dtype=np.intp).ravel()
        n_dense = n_components - tail.size
        if n_dense < 0:
            raise ValueError(
                f"indicator_tail declares {tail.size} indicator columns but the "
                f"transform only has {n_components}"
            )
        if tail.size and (
            tail.size != np.unique(tail).size
            or not np.all(transform[tail, np.arange(n_dense, n_components)] == 1.0)
        ):
            raise ValueError(
                "indicator_tail rows must be unique and each declared column "
                "must be 1.0 at its indicator row"
            )
        dense = np.ascontiguousarray(transform[:, :n_dense])

        def _mixture(w: np.ndarray) -> np.ndarray:
            out = dense @ w[:n_dense]
            if tail.size:
                out[tail] += w[n_dense:]
            return out

        def _aggregate(v: np.ndarray) -> np.ndarray:
            out = np.empty(n_components)
            out[:n_dense] = dense.T @ v
            out[n_dense:] = v[tail]
            return out

    else:

        def _mixture(w: np.ndarray) -> np.ndarray:
            return transform @ w

        def _aggregate(v: np.ndarray) -> np.ndarray:
            return transform.T @ v

    # One matrix-vector product per iteration: the mixture computed for the
    # convergence check is exactly the mixture the next E-step needs, so it is
    # carried forward instead of being recomputed (bit-identical, ~1/3 fewer
    # BLAS calls).  The log-likelihood mask is constant across iterations.
    mask = counts > 0
    masked_counts = counts[mask]
    mixture = _mixture(weights)
    prev_ll = float(np.dot(masked_counts, np.log(np.maximum(mixture[mask], 1e-300))))
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        mixture = np.maximum(mixture, 1e-300)
        # responsibilities aggregated over output buckets
        responsibilities = weights * _aggregate(counts / mixture)
        if zero_mask is not None:
            responsibilities[zero_mask] = 0.0
        if m_step is None:
            total = responsibilities.sum()
            if total <= 0:
                break
            weights = responsibilities / total
        else:
            weights = np.asarray(m_step(responsibilities), dtype=float)
            if zero_mask is not None:
                weights = weights.copy()
                weights[zero_mask] = 0.0
        mixture = _mixture(weights)
        ll = float(np.dot(masked_counts, np.log(np.maximum(mixture[mask], 1e-300))))
        if abs(ll - prev_ll) < tol:
            prev_ll = ll
            converged = True
            break
        prev_ll = ll

    return EMResult(
        weights=weights,
        log_likelihood=prev_ll,
        n_iterations=iteration,
        converged=converged,
    )


def smooth_histogram(histogram: np.ndarray, passes: int = 1) -> np.ndarray:
    """Apply the EMS binomial smoothing kernel ``[1, 2, 1] / 4``.

    Edge buckets use the truncated kernel re-normalised over the in-range
    entries, matching Li et al.'s implementation.
    """
    histogram = np.asarray(histogram, dtype=float)
    if histogram.size < 3 or passes <= 0:
        return histogram.copy()
    out = histogram.copy()
    for _ in range(passes):
        padded = np.empty(out.size + 2)
        padded[1:-1] = out
        padded[0] = out[0]
        padded[-1] = out[-1]
        smoothed = (padded[:-2] + 2.0 * padded[1:-1] + padded[2:]) / 4.0
        total = smoothed.sum()
        if total > 0:
            smoothed *= out.sum() / total
        out = smoothed
    return out


def expectation_maximization_smoothing(
    transform: np.ndarray,
    counts: np.ndarray,
    smoothing: bool = True,
    max_iter: int = 1000,
    tol: float = 1e-6,
) -> np.ndarray:
    """EMS reconstruction used by the Square Wave estimator.

    Runs EM with a smoothing pass folded into every M-step and returns the
    normalised reconstructed histogram.
    """

    def smoothed_m_step(responsibilities: np.ndarray) -> np.ndarray:
        total = responsibilities.sum()
        if total <= 0:
            return np.full_like(responsibilities, 1.0 / responsibilities.size)
        weights = responsibilities / total
        if smoothing:
            weights = smooth_histogram(weights)
            weights = np.clip(weights, 0.0, None)
            weights /= weights.sum()
        return weights

    result = em_reconstruct(
        transform, counts, max_iter=max_iter, tol=tol, m_step=smoothed_m_step
    )
    weights = np.clip(result.weights, 0.0, None)
    total = weights.sum()
    if total <= 0:
        return np.full_like(weights, 1.0 / weights.size)
    return weights / total


__all__ = [
    "EMResult",
    "em_reconstruct",
    "smooth_histogram",
    "expectation_maximization_smoothing",
]
