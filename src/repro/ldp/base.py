"""Abstract interfaces for LDP perturbation mechanisms.

Two families are distinguished:

* **Numerical** mechanisms perturb a value in a bounded interval (the paper
  normalises every dataset into ``[-1, 1]``) and produce a perturbed value in a
  possibly enlarged output domain — e.g. ``[-C, C]`` for the Piecewise
  Mechanism.  They support unbiased mean estimation.
* **Categorical** mechanisms perturb one of ``k`` categories and support
  unbiased frequency estimation.

Both expose their output domain explicitly because the threat model
(Definition 2, General Byzantine Attack) is defined directly on that output
domain: attackers may submit *any* value inside it.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


class MechanismError(RuntimeError):
    """Raised when a mechanism is used outside its contract."""


class NumericalMechanism(abc.ABC):
    """A numerical LDP mechanism over the canonical input domain.

    Parameters
    ----------
    epsilon:
        Privacy budget (> 0).
    """

    #: canonical input domain used throughout the paper
    input_domain: Tuple[float, float] = (-1.0, 1.0)

    def __init__(self, epsilon: float) -> None:
        self.epsilon = check_positive(epsilon, "epsilon")

    # ------------------------------------------------------------------
    # interface
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def output_domain(self) -> Tuple[float, float]:
        """``(D_L, D_R)`` — the interval perturbed reports live in."""

    @abc.abstractmethod
    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb a batch of values from the input domain."""

    @abc.abstractmethod
    def worst_case_variance(self) -> float:
        """Worst-case per-report variance over inputs in the input domain.

        For the Piecewise Mechanism this is the quantity the DAP aggregation
        weights of Theorem 6 are built from.
        """

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _validate_inputs(self, values: np.ndarray) -> np.ndarray:
        low, high = self.input_domain
        values = np.asarray(values, dtype=float)
        if values.size and (values.min() < low - 1e-9 or values.max() > high + 1e-9):
            raise MechanismError(
                f"{type(self).__name__} inputs must lie in [{low}, {high}], got range "
                f"[{values.min():.4g}, {values.max():.4g}]"
            )
        return np.clip(values, low, high)

    def estimate_mean(self, reports: np.ndarray) -> float:
        """Unbiased mean estimate from perturbed reports.

        The default implementation averages the reports, which is correct for
        every mechanism whose output is an unbiased estimator of its input
        (PM, Duchi, Hybrid, Laplace).  Mechanisms whose raw reports are biased
        (e.g. Square Wave) override this.
        """
        reports = np.asarray(reports, dtype=float)
        if reports.size == 0:
            raise MechanismError("cannot estimate a mean from zero reports")
        return float(reports.mean())

    def perturb_stream(
        self, value_chunks: Iterable[np.ndarray], rng: RngLike = None
    ) -> Iterator[np.ndarray]:
        """Perturb a chunked value stream, yielding one report chunk per input.

        The streaming counterpart of :meth:`perturb` for populations that do
        not fit in memory: one generator shared across all chunks, so memory
        stays proportional to the chunk size.  Feed the yielded chunks to the
        accumulators in :mod:`repro.collect`.
        """
        rng = ensure_rng(rng)
        for chunk in value_chunks:
            yield self.perturb(chunk, rng)

    def sample_output_domain(self, size: int, rng: RngLike = None) -> np.ndarray:
        """Uniform samples from the output domain.

        Convenience used by attack implementations: a General Byzantine Attack
        may place poison values anywhere inside ``output_domain``.
        """
        rng = ensure_rng(rng)
        low, high = self.output_domain
        return rng.uniform(low, high, size=size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(epsilon={self.epsilon:g})"


class DomainRestrictedMechanism(NumericalMechanism):
    """A mechanism view whose output domain is narrowed to a sub-interval.

    Used by the shuffle-model protocol (:mod:`repro.protocol.client`): once
    reports are shuffled, an adversary cannot tell which budget group a slot
    belongs to, so poison that must remain plausible for *every* group has to
    live in the intersection of all per-group output domains.  Attacks are
    handed this view in place of the per-group mechanism — everything else
    (perturbation, variances, estimation) delegates to the wrapped mechanism
    unchanged.
    """

    def __init__(
        self, base: NumericalMechanism, output_domain: Tuple[float, float]
    ) -> None:
        low, high = float(output_domain[0]), float(output_domain[1])
        base_low, base_high = base.output_domain
        if low > high:
            raise MechanismError(
                f"restricted domain is empty: [{low:.4g}, {high:.4g}]"
            )
        if low < base_low - 1e-9 or high > base_high + 1e-9:
            raise MechanismError(
                f"restricted domain [{low:.4g}, {high:.4g}] must lie inside the "
                f"base domain [{base_low:.4g}, {base_high:.4g}]"
            )
        super().__init__(base.epsilon)
        self.base = base
        self.input_domain = base.input_domain
        self._output_domain = (low, high)

    @property
    def output_domain(self) -> Tuple[float, float]:
        return self._output_domain

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        return self.base.perturb(values, rng)

    def worst_case_variance(self) -> float:
        return self.base.worst_case_variance()

    def estimate_mean(self, reports: np.ndarray) -> float:
        return self.base.estimate_mean(reports)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        low, high = self._output_domain
        return (
            f"DomainRestrictedMechanism({self.base!r}, "
            f"output_domain=({low:.4g}, {high:.4g}))"
        )


class CategoricalMechanism(abc.ABC):
    """A categorical LDP mechanism over ``k`` categories ``0 .. k-1``."""

    def __init__(self, epsilon: float, n_categories: int) -> None:
        self.epsilon = check_positive(epsilon, "epsilon")
        if n_categories < 2:
            raise ValueError(f"n_categories must be >= 2, got {n_categories}")
        self.n_categories = int(n_categories)

    @abc.abstractmethod
    def perturb(self, categories: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Perturb a batch of category indices."""

    @abc.abstractmethod
    def estimate_frequencies(self, reports: np.ndarray) -> np.ndarray:
        """Unbiased (possibly negative) frequency estimates from reports."""

    def perturb_stream(
        self, category_chunks: Iterable[np.ndarray], rng: RngLike = None
    ) -> Iterator[np.ndarray]:
        """Perturb a chunked category stream, one report chunk per input chunk."""
        rng = ensure_rng(rng)
        for chunk in category_chunks:
            yield self.perturb(chunk, rng)

    def _validate_categories(self, categories: np.ndarray) -> np.ndarray:
        categories = np.asarray(categories)
        if categories.size and (
            categories.min() < 0 or categories.max() >= self.n_categories
        ):
            raise MechanismError(
                f"categories must lie in [0, {self.n_categories}), got range "
                f"[{categories.min()}, {categories.max()}]"
            )
        return categories.astype(int)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(epsilon={self.epsilon:g}, "
            f"n_categories={self.n_categories})"
        )


__all__ = [
    "NumericalMechanism",
    "DomainRestrictedMechanism",
    "CategoricalMechanism",
    "MechanismError",
]
