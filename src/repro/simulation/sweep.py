"""Parameter sweeps producing tidy result records.

Every figure in the paper is a sweep over one or two parameters (epsilon,
gamma, poison range, poison distribution, evasive fraction, ...) with the MSE
of several schemes measured at each point.  :func:`sweep` runs such a sweep
from a declarative list of points and returns flat :class:`SweepRecord` rows
that the experiment drivers format into the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence

from repro.attacks.base import Attack
from repro.datasets.base import NumericalDataset
from repro.simulation.runner import evaluate_schemes
from repro.simulation.schemes import Scheme
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class SweepRecord:
    """One (sweep point, scheme) measurement.

    Attributes
    ----------
    point:
        The sweep point's parameters (e.g. ``{"epsilon": 0.5, "range": "[C/2,C]"}``).
    scheme:
        Scheme name.
    mse:
        Mean squared error at this point.
    bias:
        Mean signed error at this point.
    n_trials:
        Number of trials behind the measurement.
    """

    point: Dict[str, Any]
    scheme: str
    mse: float
    bias: float
    n_trials: int


#: a sweep point: parameters + factories for the schemes and the attack
PointSpec = Mapping[str, Any]


def sweep(
    points: Iterable[PointSpec],
    scheme_factory: Callable[[PointSpec], Sequence[Scheme]],
    attack_factory: Callable[[PointSpec], Attack | None],
    dataset_factory: Callable[[PointSpec], NumericalDataset],
    n_users: int,
    gamma: float | Callable[[PointSpec], float],
    n_trials: int = 3,
    rng: RngLike = None,
    input_domain: tuple[float, float] | Callable[[PointSpec], tuple[float, float]] = (-1.0, 1.0),
) -> List[SweepRecord]:
    """Run a sweep and return one record per (point, scheme).

    The factories receive the sweep point so every aspect of the experiment
    (schemes, attack, dataset, Byzantine proportion, input domain) can depend
    on the swept parameters.
    """
    rng = ensure_rng(rng)
    records: List[SweepRecord] = []
    for point in points:
        point = dict(point)
        schemes = scheme_factory(point)
        attack = attack_factory(point)
        dataset = dataset_factory(point)
        point_gamma = gamma(point) if callable(gamma) else gamma
        point_domain = input_domain(point) if callable(input_domain) else input_domain
        results = evaluate_schemes(
            schemes,
            dataset,
            attack,
            n_users=n_users,
            gamma=point_gamma,
            n_trials=n_trials,
            rng=rng,
            input_domain=point_domain,
        )
        for name, result in results.items():
            records.append(
                SweepRecord(
                    point=point,
                    scheme=name,
                    mse=result.mse,
                    bias=result.bias,
                    n_trials=n_trials,
                )
            )
    return records


def _point_key(record: SweepRecord, key: str, role: str) -> Any:
    """Resolve a pivot key on a record, refusing to collapse missing keys.

    A record whose point lacks the requested key would previously land on a
    shared ``None`` row/column, silently merging unrelated measurements; a
    heterogeneous sweep (e.g. panels with different parameters) must instead
    be filtered before pivoting.
    """
    if key == "scheme":
        return record.scheme
    if key not in record.point:
        raise KeyError(
            f"{role} key {key!r} missing from sweep point {record.point!r}; "
            f"filter the records to one panel before pivoting"
        )
    return record.point[key]


def records_to_table(
    records: Sequence[SweepRecord],
    row_key: str,
    column_key: str = "scheme",
    value: str = "mse",
) -> Dict[Any, Dict[Any, float]]:
    """Pivot sweep records into ``{row -> {column -> value}}`` for printing."""
    table: Dict[Any, Dict[Any, float]] = {}
    for record in records:
        row = _point_key(record, row_key, "row")
        column = _point_key(record, column_key, "column")
        cell = getattr(record, value)
        table.setdefault(row, {})[column] = cell
    return table


def format_table(
    table: Mapping[Any, Mapping[Any, float]],
    row_label: str = "",
    float_format: str = "{:.3e}",
) -> str:
    """Format a pivoted table as fixed-width text (paper-style rows)."""
    columns: List[Any] = []
    for row in table.values():
        for column in row:
            if column not in columns:
                columns.append(column)
    header = [row_label.ljust(14)] + [str(c).rjust(12) for c in columns]
    lines = ["".join(header)]
    for row_name, row in table.items():
        cells = [str(row_name).ljust(14)]
        for column in columns:
            value = row.get(column)
            cells.append(
                (float_format.format(value) if value is not None else "-").rjust(12)
            )
        lines.append("".join(cells))
    return "\n".join(lines)


__all__ = ["SweepRecord", "sweep", "records_to_table", "format_table"]
