"""Benchmark: Figure 7 — robustness to the Byzantine share and poison shape.

Paper claim: on Taxi at epsilon = 1 the DAP variants keep a low MSE as the
Byzantine proportion grows to 40% and across poison-value distributions
(Uniform, Gaussian, Beta(1,6), Beta(6,1)), always beating Ostrich and
Trimming.
"""

from repro.experiments import format_fig7, run_fig7


def test_fig7_robustness(benchmark, bench_scale_small):
    records = benchmark(
        run_fig7,
        bench_scale_small,
        poison_ranges=("[C/2,C]",),
        gammas=(0.1, 0.4),
        distributions=("Uniform", "Gaussian", "Beta(6,1)"),
        schemes=("DAP-EMF*", "DAP-CEMF*", "Ostrich", "Trimming"),
        rng=0,
    )
    print("\n" + format_fig7(records))

    # gamma sweep: DAP stays below the baselines even at 40% Byzantine users
    for gamma in (0.1, 0.4):
        mse = {
            r.scheme: r.mse
            for r in records
            if r.point["panel"] == "gamma" and r.point["gamma"] == gamma
        }
        assert mse["DAP-EMF*"] < mse["Ostrich"]
        assert mse["DAP-CEMF*"] < mse["Trimming"]

    # distribution sweep: DAP wins for every poison distribution
    for distribution in ("Uniform", "Gaussian", "Beta(6,1)"):
        mse = {
            r.scheme: r.mse
            for r in records
            if r.point["panel"] == "distribution"
            and r.point["distribution"] == distribution
        }
        assert mse["DAP-EMF*"] < mse["Ostrich"]
