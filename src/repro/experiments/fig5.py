"""Figure 5 — accuracy of the Byzantine-proportion estimate ``gamma_hat``.

Four panels:

* (a) ``|gamma_hat - gamma|`` vs epsilon for gamma = 0.1, four poison ranges;
* (b) the same for gamma = 0.4;
* (c) the false-positive rate: ``gamma_hat`` when there is no attack at all;
* (d) ``gamma_hat`` under an input-manipulation attack (gamma = 0.25), which
  EMF is *not* expected to detect (the reports are honestly perturbed) — the
  paper uses this as motivation for combining EMF with the k-means defence.

The qualitative claims to verify: the estimate improves monotonically as
epsilon shrinks (Theorem 3), false positives stay small (a few percent) at the
smallest budgets, and IMA keeps ``gamma_hat`` near the false-positive level.

Each (panel, range, gamma, epsilon) cell is one point of a point-granular
:class:`~repro.engine.ExperimentSpec`, so the whole figure fans out over the
process pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.attacks import (
    BiasedByzantineAttack,
    InputManipulationAttack,
    NoAttack,
    PAPER_POISON_RANGES,
)
from repro.core.features import estimate_byzantine_features
from repro.datasets import load_dataset
from repro.engine import ExperimentSpec, run_experiment
from repro.experiments.defaults import ExperimentScale, QUICK_SCALE, PROBING_EPSILONS
from repro.ldp import PiecewiseMechanism
from repro.utils.rng import RngLike, ensure_rng

#: the poison ranges compared in panels (a) and (b)
FIG5_RANGES = ("[3C/4,C]", "[C/2,C]", "[O,C/2]", "[O,C]")


@dataclass
class Fig5Record:
    """One measurement of ``gamma_hat`` for one panel configuration."""

    panel: str
    dataset: str
    epsilon: float
    gamma: float
    poison_range: str
    gamma_hat: float

    @property
    def gamma_error(self) -> float:
        """``|gamma_hat - gamma|`` — the quantity plotted in panels (a)(b)."""
        return abs(self.gamma_hat - self.gamma)


def _probe_gamma(dataset_values, attack, gamma, epsilon, rng) -> float:
    """One collection round + EMF probing, returning ``gamma_hat``."""
    mechanism = PiecewiseMechanism(epsilon)
    n_users = dataset_values.size
    n_byzantine = int(round(n_users * gamma / (1.0 - gamma))) if gamma < 1.0 else 0
    normal_reports = mechanism.perturb(dataset_values, rng)
    poison_reports = attack.poison_reports(n_byzantine, mechanism, 0.0, rng).reports
    reports = np.concatenate([normal_reports, poison_reports])
    features = estimate_byzantine_features(
        mechanism, reports, reference_mean=0.0, epsilon=epsilon
    )
    return features.gamma_hat


def _point_attack(point: Mapping):
    if point["panel"] == "c":
        return NoAttack()
    if point["panel"] == "d":
        return InputManipulationAttack(1.0)
    return BiasedByzantineAttack(PAPER_POISON_RANGES[point["poison_range"]])


@dataclass
class Fig5Spec(ExperimentSpec):
    """Point-granular spec: one probing round per figure cell."""

    values_by_dataset: Dict[str, np.ndarray] = field(default_factory=dict)

    def evaluate_point(self, point: Mapping, trial_seeds) -> Sequence[Fig5Record]:
        rng = np.random.default_rng(int(trial_seeds[0]))
        gamma_hat = _probe_gamma(
            self.values_by_dataset[point["dataset"]],
            _point_attack(point),
            point["gamma"],
            point["epsilon"],
            rng,
        )
        return [
            Fig5Record(
                panel=point["panel"],
                dataset=point["dataset"],
                epsilon=point["epsilon"],
                gamma=point["gamma"],
                poison_range=point["poison_range"],
                gamma_hat=gamma_hat,
            )
        ]


def run_fig5(
    scale: ExperimentScale = QUICK_SCALE,
    epsilons: Sequence[float] = PROBING_EPSILONS,
    datasets: Sequence[str] = ("Taxi",),
    gammas: Sequence[float] = (0.1, 0.4),
    poison_ranges: Sequence[str] = ("[C/2,C]", "[O,C]"),
    include_false_positive_panel: bool = True,
    include_ima_panel: bool = True,
    rng: RngLike = None,
    n_workers: int | str | None = None,
) -> List[Fig5Record]:
    """Regenerate the Figure 5 measurements.

    The default arguments cover a representative subset of the paper's full
    grid (every panel, two poison ranges, the Taxi dataset); pass the full
    lists to sweep everything.
    """
    rng = ensure_rng(rng)
    values_by_dataset = {
        name: load_dataset(name, n_samples=scale.n_users, rng=rng).values
        for name in datasets
    }
    points: List[dict] = []
    for dataset_name in datasets:
        # panels (a)(b): biased attacks at gamma = 0.1 / 0.4
        for gamma, panel in zip(gammas, ("a", "b")):
            for range_name in poison_ranges:
                for epsilon in epsilons:
                    points.append(
                        {
                            "panel": panel,
                            "dataset": dataset_name,
                            "epsilon": epsilon,
                            "gamma": gamma,
                            "poison_range": range_name,
                        }
                    )
        # panel (c): no attack -> gamma_hat is the false-positive rate
        if include_false_positive_panel:
            for epsilon in epsilons:
                points.append(
                    {
                        "panel": "c",
                        "dataset": dataset_name,
                        "epsilon": epsilon,
                        "gamma": 0.0,
                        "poison_range": "none",
                    }
                )
        # panel (d): input-manipulation attack at gamma = 0.25
        if include_ima_panel:
            for epsilon in epsilons:
                points.append(
                    {
                        "panel": "d",
                        "dataset": dataset_name,
                        "epsilon": epsilon,
                        "gamma": 0.25,
                        "poison_range": "IMA",
                    }
                )
    spec = Fig5Spec(
        name="fig5",
        description="Figure 5: gamma_hat accuracy per panel",
        points=points,
        n_users=scale.n_users,
        n_trials=1,
        values_by_dataset=values_by_dataset,
    )
    return run_experiment(spec, rng=rng, n_workers=n_workers)


def format_fig5(records: Sequence[Fig5Record]) -> str:
    """Render the per-panel series the paper plots."""
    lines = ["panel dataset      range       gamma   " + "".join(
        f"eps={e:<8g}" for e in sorted({r.epsilon for r in records}, reverse=True)
    )]
    epsilons = sorted({r.epsilon for r in records}, reverse=True)
    keys = sorted({(r.panel, r.dataset, r.poison_range, r.gamma) for r in records})
    for panel, dataset, range_name, gamma in keys:
        series = {
            r.epsilon: r for r in records
            if (r.panel, r.dataset, r.poison_range, r.gamma) == (panel, dataset, range_name, gamma)
        }
        cells = []
        for epsilon in epsilons:
            record = series.get(epsilon)
            if record is None:
                cells.append("-".ljust(12))
            elif panel in ("a", "b"):
                cells.append(f"{record.gamma_error:.4f}".ljust(12))
            else:
                cells.append(f"{record.gamma_hat:.4f}".ljust(12))
        lines.append(
            f"({panel})   {dataset:<12} {range_name:<11} {gamma:<7g} " + "".join(cells)
        )
    return "\n".join(lines)


__all__ = ["Fig5Record", "Fig5Spec", "run_fig5", "format_fig5", "FIG5_RANGES"]
