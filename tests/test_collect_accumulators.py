"""Unit tests for the streaming sufficient-statistics accumulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collect import (
    CategoryCountAccumulator,
    ExactSum,
    GroupAccumulator,
    HistogramAccumulator,
    SumCount,
    chunk_array,
    iter_chunks,
)
from repro.ldp import PiecewiseMechanism
from repro.attacks import BiasedByzantineAttack, PoisonRange
from repro.utils.discretization import BucketGrid

CHUNK_SIZES = (1, 7, 64, 1_000, 10_000)


class TestIterChunks:
    def test_covers_range_without_overlap(self):
        bounds = list(iter_chunks(1_003, 100))
        assert bounds[0] == (0, 100)
        assert bounds[-1] == (1_000, 1_003)
        assert sum(stop - start for start, stop in bounds) == 1_003

    def test_chunk_larger_than_n(self):
        assert list(iter_chunks(5, 100)) == [(0, 5)]

    def test_empty(self):
        assert list(iter_chunks(0, 100)) == []

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks(10, 0))

    def test_chunk_array_round_trips(self):
        values = np.arange(11.0)
        chunks = list(chunk_array(values, 4))
        assert [c.size for c in chunks] == [4, 4, 3]
        np.testing.assert_array_equal(np.concatenate(chunks), values)


class TestExactSum:
    def test_invariant_across_chunkings(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(-5, 5, 9_871)
        reference = ExactSum().add(values).value
        for chunk_size in CHUNK_SIZES:
            acc = ExactSum()
            for chunk in chunk_array(values, chunk_size):
                acc.add(chunk)
            assert acc.value == reference

    def test_correctly_rounded_on_cancellation(self):
        # 1e16 + 1 - 1e16 loses the 1 under naive float addition
        acc = ExactSum()
        acc.add(np.array([1e16, 1.0]))
        acc.add(np.array([-1e16]))
        assert acc.value == 1.0

    def test_merge_matches_single_stream(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=5_000)
        left = ExactSum().add(values[:1_234])
        right = ExactSum().add(values[1_234:])
        assert left.merge(right).value == ExactSum().add(values).value

    def test_compression_keeps_value(self):
        acc = ExactSum()
        for value in np.geomspace(1e-12, 1e12, 3_000):
            acc.add_value(value)
        assert acc.value == pytest.approx(float(np.geomspace(1e-12, 1e12, 3_000).sum()))
        assert len(acc._partials) <= 256 + 2

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            ExactSum().add(np.array([1.0, np.inf]))


class TestSumCount:
    def test_mean_invariant_across_chunkings(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(-1, 1, 4_321)
        reference = SumCount().update(values)
        for chunk_size in CHUNK_SIZES:
            acc = SumCount()
            for chunk in chunk_array(values, chunk_size):
                acc.update(chunk)
            assert acc.count == values.size
            assert acc.mean == reference.mean

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError, match="empty"):
            SumCount().mean


class TestHistogramAccumulator:
    def test_counts_match_one_shot(self):
        rng = np.random.default_rng(3)
        grid = BucketGrid(-2.0, 2.0, 37)
        values = rng.uniform(-2.5, 2.5, 6_000)  # includes out-of-domain clipping
        expected = grid.counts(values)
        for chunk_size in CHUNK_SIZES:
            acc = HistogramAccumulator(grid, track_sum=True)
            for chunk in chunk_array(values, chunk_size):
                acc.update(chunk)
            np.testing.assert_array_equal(acc.counts_float(), expected)
            assert acc.sum == ExactSum().add(values).value
            assert acc.n_values == values.size

    def test_merge_requires_same_grid(self):
        a = HistogramAccumulator(BucketGrid(0.0, 1.0, 4))
        b = HistogramAccumulator(BucketGrid(0.0, 1.0, 5))
        with pytest.raises(ValueError, match="different grids"):
            a.merge(b)

    def test_sum_requires_tracking(self):
        acc = HistogramAccumulator(BucketGrid(0.0, 1.0, 4))
        with pytest.raises(ValueError, match="track_sum"):
            acc.sum

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite_even_without_sum_tracking(self, bad):
        """Without ``track_sum`` no ExactSum ever ran, so NaN used to be
        silently counted into bucket 0 (and ±inf into the edge buckets)."""
        acc = HistogramAccumulator(BucketGrid(0.0, 1.0, 4), track_sum=False)
        with pytest.raises(ValueError, match="finite"):
            acc.update(np.array([0.5, bad]))
        np.testing.assert_array_equal(acc.counts, np.zeros(4))
        assert acc.n_values == 0


class TestCategoryCountAccumulator:
    def test_matches_bincount(self):
        rng = np.random.default_rng(4)
        reports = rng.integers(0, 9, 5_000)
        expected = np.bincount(reports, minlength=9)
        for chunk_size in CHUNK_SIZES:
            acc = CategoryCountAccumulator(9)
            for chunk in chunk_array(reports, chunk_size):
                acc.update(chunk)
            np.testing.assert_array_equal(acc.counts, expected)
            assert acc.n_reports == reports.size

    def test_rejects_out_of_range(self):
        acc = CategoryCountAccumulator(3)
        with pytest.raises(ValueError, match=r"\[0, 3\)"):
            acc.update(np.array([0, 3]))


class TestGroupAccumulator:
    def test_expected_report_mismatch_raises(self):
        acc = GroupAccumulator(1.0, BucketGrid(-3.0, 3.0, 16), n_expected_reports=10)
        acc.update(np.zeros(7))
        with pytest.raises(ValueError, match="sized for 10"):
            acc.stats()

    def test_stats_carry_sufficient_statistics(self):
        rng = np.random.default_rng(5)
        grid = BucketGrid(-3.0, 3.0, 16)
        reports = rng.uniform(-3, 3, 500)
        acc = GroupAccumulator(0.5, grid, n_expected_reports=500, n_users=250)
        acc.update_stream(chunk_array(reports, 99))
        stats = acc.stats()
        assert stats.epsilon == 0.5
        assert stats.n_reports == 500
        assert stats.n_users == 250
        assert stats.report_sum == ExactSum().add(reports).value
        np.testing.assert_array_equal(stats.output_counts, grid.counts(reports))

    def test_merge_requires_same_budget(self):
        grid = BucketGrid(-3.0, 3.0, 16)
        with pytest.raises(ValueError, match="budgets"):
            GroupAccumulator(1.0, grid).merge(GroupAccumulator(0.5, grid))


class TestSnapshots:
    """state_dict()/from_state() round trips: JSON-safe, value-preserving."""

    def test_exact_sum_round_trip_is_two_floats(self):
        acc = ExactSum().add(np.geomspace(1e-9, 1e9, 1_000))
        state = acc.state_dict()
        assert len(state["partials"]) <= 2
        assert ExactSum.from_state(state).value == acc.value

    def test_exact_sum_rejects_corrupt_state(self):
        with pytest.raises(ValueError, match="finite"):
            ExactSum.from_state({"partials": [1.0, np.nan]})

    def test_histogram_round_trip(self):
        rng = np.random.default_rng(10)
        grid = BucketGrid(-2.0, 2.0, 9)
        acc = HistogramAccumulator(grid, track_sum=True).update(rng.uniform(-2, 2, 700))
        restored = HistogramAccumulator.from_state(acc.state_dict())
        assert restored.grid == grid
        np.testing.assert_array_equal(restored.counts, acc.counts)
        assert restored.sum == acc.sum
        assert restored.n_values == acc.n_values

    def test_histogram_round_trip_without_sum(self):
        acc = HistogramAccumulator(BucketGrid(0.0, 1.0, 4)).update(np.full(5, 0.3))
        restored = HistogramAccumulator.from_state(acc.state_dict())
        with pytest.raises(ValueError, match="track_sum"):
            restored.sum
        np.testing.assert_array_equal(restored.counts, acc.counts)

    def test_histogram_rejects_wrong_count_shape(self):
        acc = HistogramAccumulator(BucketGrid(0.0, 1.0, 4))
        state = acc.state_dict()
        state["counts"] = [1, 2]
        with pytest.raises(ValueError, match="needs 4 counts"):
            HistogramAccumulator.from_state(state)

    def test_category_round_trip(self):
        acc = CategoryCountAccumulator(5).update(np.array([0, 2, 2, 4]))
        restored = CategoryCountAccumulator.from_state(acc.state_dict())
        np.testing.assert_array_equal(restored.counts, acc.counts)
        assert restored.n_categories == 5

    def test_group_round_trip_is_json_safe_and_merge_compatible(self):
        import json

        rng = np.random.default_rng(11)
        grid = BucketGrid(-3.0, 3.0, 12)
        reports = rng.uniform(-3, 3, 400)
        acc = GroupAccumulator(0.5, grid, n_expected_reports=800, n_users=200)
        acc.update(reports[:400])
        state = json.loads(json.dumps(acc.state_dict()))  # checkpointable
        restored = GroupAccumulator.from_state(state)
        assert restored.epsilon == acc.epsilon
        assert restored.n_users == acc.n_users
        assert restored.n_expected_reports == 800
        other = GroupAccumulator(0.5, grid, n_users=200).update(
            rng.uniform(-3, 3, 400)
        )
        stats = restored.merge(other).stats()
        assert stats.n_reports == 800
        assert stats.n_users == 400

    def test_group_snapshot_requires_tracked_sum(self):
        acc = GroupAccumulator(1.0, BucketGrid(-1.0, 1.0, 4))
        state = acc.state_dict()
        state["histogram"]["sum"] = None
        with pytest.raises(ValueError, match="report sum"):
            GroupAccumulator.from_state(state)


class TestChunkedClientPaths:
    def test_perturb_stream_yields_one_chunk_per_input(self):
        mech = PiecewiseMechanism(1.0)
        values = np.random.default_rng(6).uniform(-1, 1, 1_000)
        chunks = list(mech.perturb_stream(chunk_array(values, 300), rng=0))
        assert [c.size for c in chunks] == [300, 300, 300, 100]
        low, high = mech.output_domain
        for chunk in chunks:
            assert chunk.min() >= low and chunk.max() <= high

    def test_perturb_stream_is_deterministic_and_unbiased(self):
        mech = PiecewiseMechanism(2.0)
        values = np.random.default_rng(7).uniform(-0.2, 0.2, 50_000)
        first = np.concatenate(
            list(mech.perturb_stream(chunk_array(values, 999), np.random.default_rng(42)))
        )
        second = np.concatenate(
            list(mech.perturb_stream(chunk_array(values, 999), np.random.default_rng(42)))
        )
        np.testing.assert_array_equal(first, second)
        # PM reports are unbiased estimates of the inputs
        assert abs(first.mean() - values.mean()) < 0.05

    def test_poison_report_chunks_cover_n_byzantine(self):
        attack = BiasedByzantineAttack(PoisonRange.of_c(0.5, 1.0))
        mech = PiecewiseMechanism(1.0)
        pieces = list(attack.poison_report_chunks(1_003, mech, 0.0, rng=0, chunk_size=400))
        assert [p.size for p in pieces] == [400, 400, 203]
        low, high = mech.output_domain
        stacked = np.concatenate(pieces)
        assert stacked.min() >= low - 1e-9 and stacked.max() <= high + 1e-9
