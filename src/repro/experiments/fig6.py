"""Figure 6 — MSE of mean estimation across datasets, poison ranges and budgets.

The paper's headline result: for every dataset (Beta(2,5), Beta(5,2), Taxi,
Retirement), every poison range ([3C/4,C], [C/2,C], [O,C/2], [O,C]) and every
budget in {1/4, 1/2, 1, 3/2, 2}, the three DAP variants achieve a far smaller
MSE than Ostrich and Trimming, with DAP-CEMF* usually the best.

The driver is a thin definition of an :class:`~repro.engine.ExperimentSpec`
over the (dataset x range x epsilon) grid; pass ``n_workers`` to fan the grid
out over a process pool (identical results at any worker count).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.datasets import load_dataset
from repro.engine import (
    DatasetLookup,
    ExperimentSpec,
    PoisonRangeAttack,
    SchemesByName,
    run_experiment,
)
from repro.experiments.defaults import ExperimentScale, QUICK_SCALE, PAPER_EPSILONS
from repro.simulation.sweep import SweepRecord, format_table, records_to_table
from repro.utils.rng import RngLike, ensure_rng

#: the full grid of Figure 6
FIG6_DATASETS = ("Beta(2,5)", "Beta(5,2)", "Taxi", "Retirement")
FIG6_RANGES = ("[3C/4,C]", "[C/2,C]", "[O,C/2]", "[O,C]")
FIG6_SCHEMES = ("DAP-EMF", "DAP-EMF*", "DAP-CEMF*", "Ostrich", "Trimming")


def build_fig6_spec(
    scale: ExperimentScale = QUICK_SCALE,
    datasets: Sequence[str] = ("Taxi",),
    poison_ranges: Sequence[str] = ("[3C/4,C]",),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    schemes: Sequence[str] = FIG6_SCHEMES,
    epsilon_min: float = 1.0 / 16.0,
    rng: RngLike = None,
    batched: bool = False,
) -> ExperimentSpec:
    """Build the Figure 6 spec (datasets are sampled here, from ``rng``)."""
    rng = ensure_rng(rng)
    dataset_cache = {
        name: load_dataset(name, n_samples=scale.n_users, rng=rng) for name in datasets
    }
    points = [
        {"dataset": d, "poison_range": p, "epsilon": e}
        for d in datasets
        for p in poison_ranges
        for e in epsilons
    ]
    return ExperimentSpec(
        name="fig6",
        description="Figure 6: mean-estimation MSE, DAP variants vs baselines",
        points=points,
        n_users=scale.n_users,
        n_trials=scale.n_trials,
        gamma=scale.gamma,
        scheme_factory=SchemesByName(tuple(schemes), epsilon_min=epsilon_min),
        attack_factory=PoisonRangeAttack(),
        dataset_factory=DatasetLookup(dataset_cache),
        batched=batched,
    )


def run_fig6(
    scale: ExperimentScale = QUICK_SCALE,
    datasets: Sequence[str] = ("Taxi",),
    poison_ranges: Sequence[str] = ("[3C/4,C]",),
    epsilons: Sequence[float] = PAPER_EPSILONS,
    schemes: Sequence[str] = FIG6_SCHEMES,
    epsilon_min: float = 1.0 / 16.0,
    rng: RngLike = None,
    n_workers: int | str | None = None,
    batched: bool = False,
    store_path=None,
) -> List[SweepRecord]:
    """Regenerate (a configurable slice of) the Figure 6 grid.

    Defaults run one dataset and one poison range across every budget and
    scheme — one panel of the figure.  Pass ``datasets=FIG6_DATASETS`` and
    ``poison_ranges=FIG6_RANGES`` for the complete 16-panel grid.  With the
    default ``batched=False`` the records are bit-identical to the historical
    serial sweep for a given ``rng``; ``batched=True`` switches to the
    stacked-trials fast path.
    """
    rng = ensure_rng(rng)
    spec = build_fig6_spec(
        scale,
        datasets=datasets,
        poison_ranges=poison_ranges,
        epsilons=epsilons,
        schemes=schemes,
        epsilon_min=epsilon_min,
        rng=rng,
        batched=batched,
    )
    return run_experiment(spec, rng=rng, n_workers=n_workers, store_path=store_path)


def format_fig6(records: Sequence[SweepRecord]) -> str:
    """Render one MSE table per (dataset, poison range) panel."""
    panels = sorted({(r.point["dataset"], r.point["poison_range"]) for r in records})
    blocks = []
    for dataset, poison_range in panels:
        panel_records = [
            r
            for r in records
            if r.point["dataset"] == dataset and r.point["poison_range"] == poison_range
        ]
        table = records_to_table(panel_records, row_key="epsilon")
        blocks.append(
            f"## {dataset}, Poi {poison_range} (MSE per scheme)\n"
            + format_table(table, row_label="epsilon")
        )
    return "\n\n".join(blocks)


__all__ = [
    "build_fig6_spec",
    "run_fig6",
    "format_fig6",
    "FIG6_DATASETS",
    "FIG6_RANGES",
    "FIG6_SCHEMES",
]
