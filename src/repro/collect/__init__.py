"""Streaming sufficient-statistics collection.

The collector side of every protocol in this library only ever consumes
*sufficient statistics* of the report stream — bucketized histograms for the
EMF / EMF* / CEMF* probing machinery, exact sums and counts for the corrected
mean, category counts for the k-RR frequency extension.  The accumulators in
this package compute those statistics chunk by chunk, so populations far
larger than RAM can be collected in bounded memory:

* :class:`~repro.collect.accumulators.ExactSum` — chunking-invariant
  compensated summation (the corrected mean divides a report sum, so the sum
  must not depend on how the stream was chunked);
* :class:`~repro.collect.accumulators.SumCount` — streaming mean;
* :class:`~repro.collect.accumulators.HistogramAccumulator` — counts over a
  :class:`~repro.utils.discretization.BucketGrid`;
* :class:`~repro.collect.accumulators.CategoryCountAccumulator` — counts over
  a categorical domain;
* :class:`~repro.collect.accumulators.SketchAccumulator` — the ``(rows,
  width)`` counter matrix of the count-sketch high-cardinality frequency
  path;
* :class:`~repro.collect.accumulators.GroupAccumulator` /
  :class:`~repro.collect.accumulators.GroupStats` — everything one DAP group
  contributes to :meth:`repro.core.dap.DAPProtocol.aggregate_stats`.

:mod:`repro.collect.streaming` holds the chunk-planning helpers shared by the
streaming population generator, the chunked perturb/poison paths and the
``collect_stream`` protocol entry points.  :mod:`repro.collect.sharding`
adds the deterministic block-seeded :class:`~repro.collect.sharding.ShardPlan`
behind the parallel ``collect_sharded`` paths: every accumulator's
associative ``merge()`` plus per-block pre-drawn seeds make the merged round
bit-identical at any shard count and any worker count.
"""

from repro.collect.accumulators import (
    CategoryCountAccumulator,
    ExactSum,
    GroupAccumulator,
    GroupStats,
    HistogramAccumulator,
    SketchAccumulator,
    SumCount,
)
from repro.collect.sharding import (
    DEFAULT_SHARD_BLOCK,
    ShardPlan,
    ShardSlice,
    build_shard_plan,
)
from repro.collect.streaming import DEFAULT_CHUNK_SIZE, chunk_array, iter_chunks

__all__ = [
    "CategoryCountAccumulator",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_SHARD_BLOCK",
    "ExactSum",
    "GroupAccumulator",
    "GroupStats",
    "HistogramAccumulator",
    "ShardPlan",
    "SketchAccumulator",
    "ShardSlice",
    "SumCount",
    "build_shard_plan",
    "chunk_array",
    "iter_chunks",
]
