"""Laplace mechanism adapted to the local model.

Adds Laplace noise with scale ``2 / epsilon`` (the sensitivity of a value in
``[-1, 1]``) to each report.  Its output domain is unbounded, which is exactly
why the paper's long-tail-attack discussion favours bounded-output mechanisms;
we keep it as a sanity baseline and for variance comparisons in the examples.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ldp.base import NumericalMechanism
from repro.registry import MECHANISMS
from repro.utils.rng import RngLike, ensure_rng


@MECHANISMS.register("laplace", kind="numerical")
class LaplaceMechanism(NumericalMechanism):
    """Laplace perturbation of values in ``[-1, 1]`` with sensitivity 2."""

    #: nominal truncation (in noise scales) used to report a finite output
    #: domain for attack modelling; reports themselves are never truncated.
    NOMINAL_TAIL_SCALES = 20.0

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        self.scale = 2.0 / self.epsilon

    @property
    def output_domain(self) -> Tuple[float, float]:
        bound = 1.0 + self.NOMINAL_TAIL_SCALES * self.scale
        return (-bound, bound)

    def perturb(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        rng = ensure_rng(rng)
        values = self._validate_inputs(values)
        noise = rng.laplace(loc=0.0, scale=self.scale, size=values.shape)
        return values + noise

    def variance(self, value: float) -> float:  # noqa: ARG002 - value-independent
        """Per-report variance (independent of the input)."""
        return 2.0 * self.scale**2

    def worst_case_variance(self) -> float:
        return self.variance(0.0)


__all__ = ["LaplaceMechanism"]
