"""The windowed aggregation runtime (continuous-service mode).

One :class:`WindowedAggregationService` turns the one-shot DAP round into a
long-running collector:

* **Ingest** — each window, ``window_size`` users arrive; their reports are
  collected through :meth:`repro.core.dap.DAPProtocol.collect_sharded`, i.e.
  the same block-seeded shard plan and (optionally multiprocess) worker pool
  as the batch path, into per-window :class:`~repro.collect.GroupAccumulator`
  objects.
* **Accumulate** — the window accumulators merge into *cumulative* per-group
  accumulators.  All grids are frozen at service start (the paper's
  ``d' = floor(sqrt(N))`` evaluated at the horizon's expected probe-group
  report count), so every window's statistics live on one geometry and the
  cumulative state stays a few kilobytes per group no matter how many
  millions of users stream past.
* **Probe incrementally** — stages 3-5 re-run per window on the cumulative
  statistics, with the side-probe EMs warm-started from the previous
  window's converged weights.  The likelihood is concave, so warm starts
  reach the same maximisers; between consecutive windows the cumulative
  histogram barely moves, so the steady-state probe converges in a handful
  of iterations instead of a cold solve's hundreds.
* **Detect** — the marginal (per-window) Byzantine proportion feeds a CUSUM
  detector (:mod:`repro.service.detector`), flagging a mid-stream attack
  onset within a couple of windows.
* **Checkpoint** — after each window the cumulative accumulators, probe warm
  state, detector state and window results snapshot atomically to one JSON
  file.  Window ``w`` consumes randomness derived from ``(seed, w)`` only,
  so a killed service resumes *bit-identically*: the estimates after a
  SIGKILL + resume equal an uninterrupted run's, float for float.
"""

from __future__ import annotations

import sys
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.backends import use_backend
from repro.collect.accumulators import GroupAccumulator
from repro.core.dap import DAPConfig, DAPProtocol
from repro.core.transform import default_bucket_counts
from repro.resilience import stats as resilience_stats
from repro.resilience.faults import active_injector, corrupt_file
from repro.resilience.pool import reset_degradation_latch
from repro.scenario import attack_from_spec, dataset_from_spec
from repro.service.checkpoint import CHECKPOINT_VERSION, CheckpointChain
from repro.service.detector import CusumDetector
from repro.service.spec import ServiceSpec
from repro.simulation.population import build_population
from repro.utils import profiling

try:  # pragma: no cover - absent only off-POSIX
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]


def _peak_rss_mb() -> Optional[float]:
    """Peak resident set size of this process in MiB (None off-POSIX)."""
    if resource is None:  # pragma: no cover
        return None
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@dataclass
class WindowResult:
    """One window's deterministic outputs plus timing diagnostics.

    ``estimate`` through ``flagged`` are pure functions of the spec (the
    kill/resume equivalence check compares exactly these); the ``*_seconds``
    and ``peak_rss_mb`` fields are measurements and differ run to run.
    """

    window: int
    n_users_cum: int
    n_reports_cum: int
    estimate: float
    gamma_hat: float
    poisoned_side: str
    window_gamma: float
    detector_score: float
    flagged: bool
    warm: bool
    probe_iterations: int
    collect_seconds: float = 0.0
    probe_seconds: float = 0.0
    aggregate_seconds: float = 0.0
    window_seconds: float = 0.0
    peak_rss_mb: Optional[float] = None

    #: the fields that must be bit-identical across kill/resume
    DETERMINISTIC_FIELDS = (
        "window",
        "n_users_cum",
        "n_reports_cum",
        "estimate",
        "gamma_hat",
        "poisoned_side",
        "window_gamma",
        "detector_score",
        "flagged",
        "warm",
    )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window": self.window,
            "n_users_cum": self.n_users_cum,
            "n_reports_cum": self.n_reports_cum,
            "estimate": self.estimate,
            "gamma_hat": self.gamma_hat,
            "poisoned_side": self.poisoned_side,
            "window_gamma": self.window_gamma,
            "detector_score": self.detector_score,
            "flagged": self.flagged,
            "warm": self.warm,
            "probe_iterations": self.probe_iterations,
            "collect_seconds": self.collect_seconds,
            "probe_seconds": self.probe_seconds,
            "aggregate_seconds": self.aggregate_seconds,
            "window_seconds": self.window_seconds,
            "peak_rss_mb": self.peak_rss_mb,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "WindowResult":
        return cls(**row)

    def deterministic_view(self) -> Dict[str, Any]:
        """The resume-invariant fields (what equivalence checks compare)."""
        return {key: getattr(self, key) for key in self.DETERMINISTIC_FIELDS}


@dataclass
class ServiceResult:
    """Outcome of a (possibly resumed) service run."""

    spec: ServiceSpec
    windows: List[WindowResult]
    resumed_from: int
    checkpoint_path: Optional[str]
    profile: Dict[str, float] = field(default_factory=dict)
    #: recovery events this run absorbed (retries, quarantines, ...) — a
    #: diagnostic, never part of the deterministic outputs
    resilience: Dict[str, int] = field(default_factory=dict)

    @property
    def estimate(self) -> float:
        """The final window's cumulative estimate."""
        return self.windows[-1].estimate

    @property
    def flagged_window(self) -> Optional[int]:
        """First window the change detector flagged, if any."""
        for row in self.windows:
            if row.flagged:
                return row.window
        return None


class WindowedAggregationService:
    """Run a :class:`~repro.service.spec.ServiceSpec` window by window."""

    def __init__(
        self, spec: ServiceSpec, checkpoint_path: str | None = None
    ) -> None:
        self.spec = spec
        self.checkpoint_path = checkpoint_path

        # deterministic derived components: the dataset pool and the attack
        # are functions of the spec alone (stream seed lane 0)
        dataset_rng = np.random.default_rng(np.random.SeedSequence([spec.seed, 0]))
        _, self._dataset = dataset_from_spec(
            spec.dataset, spec.window_size, rng=dataset_rng
        )
        _, self._attack = attack_from_spec(spec.attack)

        # Freeze the grid geometry at the horizon: the probe group (budget
        # eps_0, highest report multiplicity) evaluated with the paper's
        # formulas at its expected total report count.  Every group then
        # accumulates on d_out buckets over its own output domain, windows
        # merge exactly, and the probe transform — hence the warm-start
        # weight vectors — keeps one shape for the whole stream.
        base = DAPConfig(
            epsilon=spec.epsilon,
            epsilon_min=spec.epsilon_min,
            estimator=spec.estimator,  # type: ignore[arg-type]
            probe_strategy=spec.probe_strategy,
            protocol=spec.protocol,
        )
        probe_protocol = DAPProtocol(base)
        ladder = base.budget_ladder
        probe_epsilon = ladder[-1]
        probe_size = probe_protocol.group_sizes(spec.window_size)[-1]
        repeats = probe_protocol._reports_per_user(probe_epsilon)
        total_probe_reports = max(1, spec.n_windows * probe_size * repeats)
        d_in, d_out = default_bucket_counts(total_probe_reports, probe_epsilon)
        self.config = replace(base, n_input_buckets=d_in, n_output_buckets=d_out)
        self.protocol = DAPProtocol(self.config)

        # run state (populated by _fresh_state / _restore_state)
        self._cumulative: List[GroupAccumulator] = []
        self._warm: Dict[str, np.ndarray] | None = None
        self._detector = CusumDetector(**spec.detector_config())
        self._windows: List[WindowResult] = []
        self._next_window = 0
        self._prev_probe_gamma = 0.0
        self._prev_probe_reports = 0

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------
    def _fresh_state(self) -> None:
        ladder = self.config.budget_ladder
        self._cumulative = [
            GroupAccumulator(
                epsilon_t,
                self.protocol.group_output_grid(epsilon_t, 1),
                n_expected_reports=None,
            )
            for epsilon_t in ladder
        ]
        self._warm = None
        self._detector = CusumDetector(**self.spec.detector_config())
        self._windows = []
        self._next_window = 0
        self._prev_probe_gamma = 0.0
        self._prev_probe_reports = 0

    def _restore_state(self, payload: Dict[str, Any]) -> None:
        ladder = self.config.budget_ladder
        cumulative = [
            GroupAccumulator.from_state(state) for state in payload["cumulative"]
        ]
        if [acc.epsilon for acc in cumulative] != list(ladder):
            raise ValueError(
                "checkpoint cumulative groups do not match the budget ladder; "
                "the checkpoint is corrupt"
            )
        for acc, epsilon_t in zip(cumulative, ladder):
            expected_grid = self.protocol.group_output_grid(epsilon_t, 1)
            if acc.output_grid != expected_grid:
                raise ValueError(
                    f"checkpoint group (epsilon={epsilon_t:g}) was accumulated "
                    f"on a different grid; the checkpoint is corrupt"
                )
        self._cumulative = cumulative
        warm = payload.get("probe_warm")
        if warm is None:
            self._warm = None
        else:
            self._warm = {
                side: np.asarray(weights, dtype=float)
                for side, weights in warm.items()
            }
        self._detector = CusumDetector.from_state(payload["detector"])
        self._windows = [WindowResult.from_dict(row) for row in payload["windows"]]
        self._next_window = int(payload["next_window"])
        prev = payload.get("probe_prev") or {}
        self._prev_probe_gamma = float(prev.get("gamma_hat", 0.0))
        self._prev_probe_reports = int(prev.get("n_reports", 0))
        recorded = payload.get("execution") or {}
        current = self.spec.execution_details()
        drifted = {
            key: (recorded.get(key), current[key])
            for key in current
            if key in recorded and recorded[key] != current[key]
        }
        if drifted:
            # execution details do not change the bits (sharding is
            # block-seeded, backends are either bit-stable or explicitly
            # chosen), but surface the drift for provenance
            warnings.warn(
                f"resuming with different execution details than the "
                f"checkpointed run: {drifted}",
                RuntimeWarning,
                stacklevel=3,
            )

    def _checkpoint_payload(self) -> Dict[str, Any]:
        return {
            "version": CHECKPOINT_VERSION,
            "digest": self.spec.digest(),
            "name": self.spec.name,
            "next_window": self._next_window,
            "execution": self.spec.execution_details(),
            "cumulative": [acc.state_dict() for acc in self._cumulative],
            "probe_warm": (
                None
                if self._warm is None
                else {side: weights.tolist() for side, weights in self._warm.items()}
            ),
            "probe_prev": {
                "gamma_hat": self._prev_probe_gamma,
                "n_reports": self._prev_probe_reports,
            },
            "detector": self._detector.state_dict(),
            "windows": [row.to_dict() for row in self._windows],
        }

    # ------------------------------------------------------------------
    # the stream
    # ------------------------------------------------------------------
    def run(
        self,
        resume: bool = True,
        progress: Callable[[WindowResult], None] | None = None,
    ) -> ServiceResult:
        """Process windows until the horizon, checkpointing as configured.

        ``resume=True`` (default) continues from the newest *valid* member of
        the checkpoint chain at ``checkpoint_path`` — corrupt, truncated or
        stale members are quarantined (renamed aside) and the service rolls
        back to their newest valid ancestor, replaying the missing windows
        bit-identically; ``resume=False`` ignores the chain and recomputes
        the stream from window 0 (the chain is rotated forward as usual).
        """
        spec = self.spec
        reset_degradation_latch()
        resilience_before = resilience_stats.snapshot()
        self._fresh_state()
        resumed_from = 0
        chain = (
            None
            if self.checkpoint_path is None
            else CheckpointChain(self.checkpoint_path, retain=spec.checkpoint_retain)
        )
        if resume and chain is not None:
            payload, _quarantined = chain.load_latest(
                expected_digest=spec.digest()
            )
            if payload is not None:
                self._restore_state(payload)
                resumed_from = self._next_window

        profile_before = profiling.snapshot()
        with use_backend(spec.backend):
            for window in range(self._next_window, spec.n_windows):
                row = self._run_window(window)
                self._windows.append(row)
                self._next_window = window + 1
                if chain is not None and (
                    (window + 1) % spec.checkpoint_every == 0
                    or window + 1 == spec.n_windows
                ):
                    chain.write(self._checkpoint_payload())
                    injector = active_injector()
                    if injector is not None:
                        mode = injector.checkpoint_fault(window)
                        if mode is not None:
                            # damage the freshly written head: the in-memory
                            # run is unaffected, and the next resume must
                            # quarantine it and roll back to an ancestor
                            corrupt_file(self.checkpoint_path, mode)
                if progress is not None:
                    progress(row)
        return ServiceResult(
            spec=spec,
            windows=list(self._windows),
            resumed_from=resumed_from,
            checkpoint_path=self.checkpoint_path,
            profile=profiling.delta_since(profile_before),
            resilience=resilience_stats.delta_since(resilience_before),
        )

    def _run_window(self, window: int) -> WindowResult:
        """Ingest one window and re-estimate on the cumulative statistics.

        Randomness contract: everything in window ``w`` draws from one
        generator seeded by ``(seed, 1, w)`` — population sampling, group
        assignment and the shard plan's block seeds — so the window's
        contribution is a pure function of the spec, whichever run (first or
        resumed, serial or pooled) computes it.
        """
        spec = self.spec
        started = time.perf_counter()
        before = profiling.snapshot()

        rng = np.random.default_rng(np.random.SeedSequence([spec.seed, 1, window]))
        gamma_w = spec.gamma if window >= spec.attack_start else 0.0
        population = build_population(
            self._dataset,
            spec.window_size,
            gamma_w,
            rng=rng,
            input_domain=spec.input_domain,
        )
        window_accumulators = self.protocol.collect_sharded(
            population.normal_values,
            self._attack,
            population.n_byzantine,
            rng=rng,
            n_shards=spec.collect_shards,
            n_workers=spec.collect_workers,
        )
        for cumulative, fresh in zip(self._cumulative, window_accumulators):
            # collect_sharded's merge base reports n_users=0; count the
            # window's users from the shard merges it absorbed
            cumulative.merge(fresh)

        warm_start = self._warm if spec.warm_probe else None
        stats = [acc.stats() for acc in self._cumulative if acc.n_reports > 0]
        result = self.protocol.aggregate_stats(stats, probe_warm_start=warm_start)
        assert result.features is not None
        self._warm = result.features.probe.warm_weights()

        # marginal Byzantine proportion: poison mass the newest window added
        # to the probe group, as a fraction of the window's probe reports
        probe_stats = min(stats, key=lambda s: s.epsilon)
        probe_reports = probe_stats.n_reports
        new_reports = probe_reports - self._prev_probe_reports
        if new_reports > 0:
            window_gamma = (
                result.gamma_hat * probe_reports
                - self._prev_probe_gamma * self._prev_probe_reports
            ) / new_reports
        else:
            window_gamma = 0.0
        self._prev_probe_gamma = result.gamma_hat
        self._prev_probe_reports = probe_reports
        self._detector.update(window, window_gamma)

        delta = profiling.delta_since(before)
        probe_emf = result.features.probe.selected
        return WindowResult(
            window=window,
            n_users_cum=(window + 1) * spec.window_size,
            n_reports_cum=sum(acc.n_reports for acc in self._cumulative),
            estimate=result.estimate,
            gamma_hat=result.gamma_hat,
            poisoned_side=result.poisoned_side,
            window_gamma=window_gamma,
            detector_score=self._detector.score,
            flagged=self._detector.flagged,
            warm=warm_start is not None,
            probe_iterations=int(
                result.features.probe.emf_left.n_iterations
                + result.features.probe.emf_right.n_iterations
            ),
            collect_seconds=delta.get("collect", 0.0),
            probe_seconds=delta.get("probe", 0.0),
            aggregate_seconds=delta.get("aggregate", 0.0),
            window_seconds=time.perf_counter() - started,
            peak_rss_mb=_peak_rss_mb(),
        )


def run_service(
    spec: ServiceSpec,
    checkpoint_path: str | None = None,
    resume: bool = True,
    progress: Callable[[WindowResult], None] | None = None,
) -> ServiceResult:
    """Convenience wrapper: build the runtime and run the stream."""
    service = WindowedAggregationService(spec, checkpoint_path=checkpoint_path)
    return service.run(resume=resume, progress=progress)


def format_window(row: WindowResult, n_windows: int) -> str:
    """One human-readable progress line per window (CLI output)."""
    flag = "  [ATTACK FLAGGED]" if row.flagged else ""
    return (
        f"window {row.window + 1}/{n_windows}: estimate={row.estimate:+.4f} "
        f"gamma={row.gamma_hat:.3f} side={row.poisoned_side} "
        f"probe={row.probe_seconds:.3f}s ({row.probe_iterations} EM iters) "
        f"window={row.window_seconds:.2f}s{flag}"
    )


__all__ = [
    "ServiceResult",
    "WindowResult",
    "WindowedAggregationService",
    "format_window",
    "run_service",
]
