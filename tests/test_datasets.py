"""Tests for the dataset generators and the registry."""

import numpy as np
import pytest

from repro.datasets import (
    CategoricalDataset,
    NumericalDataset,
    available_datasets,
    beta_dataset,
    covid_dataset,
    load_dataset,
    normalize_to_unit,
    retirement_dataset,
    taxi_dataset,
    uniform_dataset,
)
from repro.datasets.base import denormalize_from_unit
from repro.experiments.fig4 import PAPER_MEANS


class TestNormalization:
    def test_round_trip(self):
        values = np.array([10_000.0, 35_000.0, 60_000.0])
        normalised = normalize_to_unit(values, 10_000, 60_000)
        np.testing.assert_allclose(normalised, [-1.0, 0.0, 1.0])
        np.testing.assert_allclose(
            denormalize_from_unit(normalised, 10_000, 60_000), values
        )

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            normalize_to_unit(np.array([1.0]), 5, 5)


class TestNumericalDataset:
    def test_basic_statistics(self):
        ds = NumericalDataset("toy", np.array([-1.0, 0.0, 1.0]), (-1, 1))
        assert ds.n == 3
        assert ds.true_mean == pytest.approx(0.0)
        assert ds.true_variance == pytest.approx(2 / 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            NumericalDataset("bad", np.array([2.0]), (-1, 1))

    def test_histogram_sums_to_one(self):
        ds = uniform_dataset(n_samples=2_000, rng=0)
        histogram, grid = ds.histogram(16)
        assert histogram.sum() == pytest.approx(1.0)
        assert grid.n_buckets == 16

    def test_sample_without_replacement_when_possible(self, rng):
        ds = uniform_dataset(n_samples=100, rng=0)
        sample = ds.sample(50, rng)
        assert sample.size == 50

    def test_sample_with_replacement_when_needed(self, rng):
        ds = uniform_dataset(n_samples=10, rng=0)
        assert ds.sample(25, rng).size == 25

    def test_subset(self, rng):
        ds = uniform_dataset(n_samples=100, rng=0)
        sub = ds.subset(10, rng)
        assert sub.n == 10 and sub.name == ds.name


class TestGenerators:
    def test_beta_dataset_mean_close_to_theory(self):
        # Beta(2,5) has mean 2/7 on [0,1] -> 2*2/7 - 1 on [-1,1]
        ds = beta_dataset(2, 5, n_samples=50_000, rng=0)
        assert ds.true_mean == pytest.approx(2 * 2 / 7 - 1, abs=0.02)

    def test_beta_dataset_name(self):
        assert beta_dataset(5, 2, 100, rng=0).name == "Beta(5,2)"

    def test_taxi_mean_close_to_paper(self):
        ds = taxi_dataset(n_samples=50_000, rng=0)
        assert ds.true_mean == pytest.approx(PAPER_MEANS["Taxi"], abs=0.05)

    def test_retirement_mean_close_to_paper(self):
        ds = retirement_dataset(n_samples=50_000, rng=0)
        assert ds.true_mean == pytest.approx(PAPER_MEANS["Retirement"], abs=0.05)

    def test_values_in_unit_interval(self):
        for ds in (
            taxi_dataset(5_000, rng=1),
            retirement_dataset(5_000, rng=1),
            beta_dataset(2, 5, 5_000, rng=1),
        ):
            assert ds.values.min() >= -1.0 and ds.values.max() <= 1.0

    def test_reproducible_with_seed(self):
        a = taxi_dataset(1_000, rng=5).values
        b = taxi_dataset(1_000, rng=5).values
        np.testing.assert_array_equal(a, b)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            taxi_dataset(0)
        with pytest.raises(ValueError):
            beta_dataset(0, 1, 100)


class TestCovidDataset:
    def test_structure(self):
        ds = covid_dataset(n_samples=20_000, rng=0)
        assert isinstance(ds, CategoricalDataset)
        assert ds.n_categories == 15
        assert ds.n == 20_000

    def test_frequencies_sum_to_one(self):
        ds = covid_dataset(n_samples=10_000, rng=0)
        assert ds.true_frequencies.sum() == pytest.approx(1.0)

    def test_older_groups_dominate(self):
        ds = covid_dataset(n_samples=50_000, rng=0)
        freq = ds.true_frequencies
        # the 85+ group (index 10) should far exceed the under-25 groups
        assert freq[10] > 10 * freq[:4].sum()

    def test_sampling(self, rng):
        ds = covid_dataset(n_samples=1_000, rng=0)
        assert ds.sample(100, rng).size == 100

    def test_label_validation(self):
        with pytest.raises(ValueError):
            CategoricalDataset("bad", np.array([0, 5]), labels=("a", "b"))


class TestRegistry:
    def test_all_paper_datasets_loadable(self):
        for name in ("Beta(2,5)", "Beta(5,2)", "Taxi", "Retirement", "COVID-19"):
            ds = load_dataset(name, n_samples=500, rng=0)
            assert len(ds) == 500

    def test_case_insensitive(self):
        assert load_dataset("taxi", 100, rng=0).name == "Taxi"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            load_dataset("nonexistent")

    def test_available_listing(self):
        names = available_datasets()
        assert "taxi" in names and "covid-19" in names
