"""Input Manipulation Attack (IMA).

Byzantine users choose an input poison value ``g`` (typically an extreme of
the input domain) and then perturb it *honestly* with the LDP mechanism, so
their reports are statistically indistinguishable from those of a normal user
holding ``g``.  The attack is far weaker than output manipulation but much
harder to detect — the paper evaluates it in Figures 5(d) and 9(b) and shows
EMF can be combined with the k-means defence to handle it.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackReport
from repro.ldp.base import NumericalMechanism
from repro.registry import ATTACKS
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_in_interval


@ATTACKS.register("ima", aliases=("input-manipulation",))
class InputManipulationAttack(Attack):
    """Perturb a chosen input poison value ``g`` through the real mechanism.

    Parameters
    ----------
    poison_input:
        The input value ``g`` in ``[-1, 1]`` every Byzantine user pretends to
        hold (``1.0`` by default — the strongest right-side bias available to
        an input-manipulating attacker).
    """

    def __init__(self, poison_input: float = 1.0) -> None:
        self.poison_input = check_in_interval(poison_input, -1.0, 1.0, "poison_input")

    def poison_reports(
        self,
        n_byzantine: int,
        mechanism: NumericalMechanism,
        reference_mean: float = 0.0,
        rng: RngLike = None,
    ) -> AttackReport:
        n = self._check_population(n_byzantine)
        rng = ensure_rng(rng)
        if n == 0:
            return AttackReport(reports=np.empty(0), poisoned_side="right")
        low, high = mechanism.input_domain
        g = float(np.clip(self.poison_input, low, high))
        inputs = np.full(n, g)
        reports = mechanism.perturb(inputs, rng)
        side = "right" if g >= reference_mean else "left"
        return AttackReport(reports=np.asarray(reports, dtype=float), poisoned_side=side)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InputManipulationAttack(poison_input={self.poison_input:g})"


__all__ = ["InputManipulationAttack"]
