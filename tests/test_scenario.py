"""Scenario layer: ScenarioSpec validation, lowering, and engine equivalence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.attacks import (
    BiasedByzantineAttack,
    GaussianPoison,
    InputManipulationAttack,
    NoAttack,
    PAPER_POISON_RANGES,
)
from repro.engine import (
    AttackLookup,
    DatasetLookup,
    ExperimentSpec,
    SchemesFromSpecs,
    run_experiment,
)
from repro.scenario import (
    ScenarioSpec,
    attack_from_spec,
    dataset_from_spec,
    format_scenario_records,
    run_scenario,
)
from repro.utils.rng import ensure_rng

QUICK = dict(
    name="quick",
    schemes=("Ostrich", "Trimming"),
    epsilons=(0.5, 1.0),
    attacks=({"name": "bba", "poison_range": "[C/2,C]"},),
    datasets=("Uniform",),
    n_users=500,
    n_trials=2,
    seed=11,
)


class TestAttackSpecs:
    def test_name_only(self):
        label, attack = attack_from_spec("ima")
        assert label == "ima" and isinstance(attack, InputManipulationAttack)

    def test_none_and_null(self):
        for spec in (None, "none"):
            label, attack = attack_from_spec(spec)
            assert isinstance(attack, NoAttack)

    def test_range_and_distribution_resolution(self):
        label, attack = attack_from_spec(
            {"name": "bba", "poison_range": "[3C/4,C]",
             "distribution": {"name": "gaussian", "relative_std": 0.1},
             "label": "custom"}
        )
        assert label == "custom"
        assert isinstance(attack, BiasedByzantineAttack)
        assert attack.poison_range is PAPER_POISON_RANGES["[3C/4,C]"]
        assert isinstance(attack.distribution, GaussianPoison)
        assert attack.distribution.relative_std == 0.1

    def test_absolute_range_pair(self):
        _, attack = attack_from_spec({"name": "bba", "poison_range": [0.5, 0.9]})
        assert attack.poison_range.label == "[0.5,0.9]"

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError, match="registered attacks"):
            attack_from_spec("not-an-attack")
        with pytest.raises(KeyError, match="known ranges"):
            attack_from_spec({"name": "bba", "poison_range": "[bogus]"})
        with pytest.raises(KeyError, match="known:"):
            attack_from_spec({"name": "bba", "distribution": "bogus"})
        with pytest.raises(KeyError, match="unknown poison distribution"):
            attack_from_spec({"name": "bba", "distribution": {"name": 5}})
        with pytest.raises(ValueError, match="needs a 'name'"):
            attack_from_spec({"poison_range": "[O,C]"})


class TestDatasetSpecs:
    def test_params_and_label(self):
        label, dataset = dataset_from_spec(
            {"name": "uniform", "low": 0.0, "high": 0.5, "label": "U[0,.5]"},
            n_samples=300,
            rng=0,
        )
        assert label == "U[0,.5]" and len(dataset) == 300
        assert dataset.values.min() >= 0.0

    def test_categorical_rejected(self):
        with pytest.raises(ValueError, match="categorical"):
            dataset_from_spec("covid-19", n_samples=100, rng=0)


class TestScenarioValidation:
    def test_from_dict_round_trip(self):
        scenario = ScenarioSpec.from_dict(
            {
                "name": "s",
                "schemes": ["Ostrich"],
                "epsilons": [1.0],
                "trials": 2,
                "population": {"n_users": 600, "gamma": 0.1},
            }
        )
        assert scenario.n_trials == 2
        assert scenario.n_users == 600
        assert scenario.gamma == 0.1

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys \\['bogus'\\]"):
            ScenarioSpec.from_dict(
                {"name": "s", "schemes": ["Ostrich"], "epsilons": [1.0], "bogus": 1}
            )
        with pytest.raises(ValueError, match="unknown population keys"):
            ScenarioSpec.from_dict(
                {"name": "s", "schemes": ["Ostrich"], "epsilons": [1.0],
                 "population": {"users": 5}}
            )

    def test_missing_required_keys(self):
        with pytest.raises(ValueError, match="missing .*schemes"):
            ScenarioSpec.from_dict({"name": "s", "epsilons": [1.0]})

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="empty 'attacks' axis"):
            ScenarioSpec(name="s", schemes=("Ostrich",), epsilons=(1.0,), attacks=())

    def test_duplicate_attack_labels_rejected(self):
        scenario = ScenarioSpec(
            **{**QUICK, "attacks": ("bba", {"name": "bba", "side": "left"})}
        )
        with pytest.raises(ValueError, match="duplicate attack label"):
            scenario.to_experiment_spec()

    def test_duplicate_scheme_labels_rejected(self):
        # scheme names key resumed artifacts per point, so colliding display
        # names would silently serve one scheme's records for both
        scenario = ScenarioSpec(
            **{
                **QUICK,
                "schemes": (
                    "Trimming",
                    {"defense": "trimming", "params": {"trim_fraction": 0.4}},
                ),
            }
        )
        with pytest.raises(ValueError, match="duplicate scheme label"):
            scenario.to_experiment_spec()


class TestLowering:
    def test_grid_shape_and_keys(self):
        scenario = ScenarioSpec(
            **{**QUICK, "attacks": ("bba", "ima"), "datasets": ("Uniform", "Gaussian")}
        )
        spec = scenario.to_experiment_spec()
        assert isinstance(spec, ExperimentSpec)
        assert len(spec.points) == 2 * 2 * 2  # dataset x attack x epsilon
        assert spec.points[0] == {"dataset": "Uniform", "attack": "bba", "epsilon": 0.5}
        schemes = spec.schemes_for(spec.points[0])
        assert [s.name for s in schemes] == ["Ostrich", "Trimming"]

    def test_gamma_grid_becomes_axis(self):
        scenario = ScenarioSpec(**{**QUICK, "gammas": (0.1, 0.3)})
        spec = scenario.to_experiment_spec()
        assert len(spec.points) == 1 * 1 * 2 * 2
        assert spec.point_gamma(spec.points[0]) == 0.1
        assert spec.point_gamma(spec.points[-1]) == 0.3

    def test_records_match_programmatic_experiment_spec(self):
        """Scenario records are bit-identical to the hand-built engine call."""
        scenario = ScenarioSpec(**QUICK)
        via_scenario = run_scenario(scenario)

        master = ensure_rng(scenario.seed)
        label, dataset = dataset_from_spec("Uniform", scenario.n_users, master)
        attack_label, attack = attack_from_spec(
            {"name": "bba", "poison_range": "[C/2,C]"}
        )
        spec = ExperimentSpec(
            name=scenario.name,
            points=[
                {"dataset": label, "attack": attack_label, "epsilon": epsilon}
                for epsilon in scenario.epsilons
            ],
            n_users=scenario.n_users,
            n_trials=scenario.n_trials,
            gamma=scenario.gamma,
            scheme_factory=SchemesFromSpecs(scenario.schemes),
            attack_factory=AttackLookup({attack_label: attack}),
            dataset_factory=DatasetLookup({label: dataset}),
        )
        programmatic = run_experiment(spec, rng=master)
        assert [(r.point, r.scheme, r.mse, r.bias) for r in via_scenario] == [
            (r.point, r.scheme, r.mse, r.bias) for r in programmatic
        ]

    def test_parallel_identical_to_serial(self):
        scenario = ScenarioSpec(**QUICK)
        serial = run_scenario(scenario)
        parallel = run_scenario(scenario, n_workers=2)
        assert [(r.scheme, r.mse) for r in serial] == [
            (r.scheme, r.mse) for r in parallel
        ]

    def test_store_resume_round_trip(self, tmp_path):
        scenario = ScenarioSpec(**QUICK)
        store = tmp_path / "run.json"
        first = run_scenario(scenario, store_path=store)
        assert store.exists()
        payload = json.loads(store.read_text())
        assert payload["meta"]["fingerprint"]["name"] == "quick"
        resumed = run_scenario(scenario, store_path=store, resume=True)
        assert [(r.scheme, r.mse) for r in first] == [
            (r.scheme, r.mse) for r in resumed
        ]

    def test_edited_scenario_never_resumes_stale_artifact(self, tmp_path):
        """Changing seed or scheme params must invalidate the artifact."""
        store = tmp_path / "run.json"
        run_scenario(ScenarioSpec(**QUICK), store_path=store)
        edited = ScenarioSpec(**{**QUICK, "seed": 99})
        resumed = run_scenario(edited, store_path=store, resume=True)
        fresh = run_scenario(edited)
        assert [(r.scheme, r.mse) for r in resumed] == [
            (r.scheme, r.mse) for r in fresh
        ]

        reparams = ScenarioSpec(
            **{
                **QUICK,
                "schemes": (
                    {"defense": "trimming", "params": {"trim_fraction": 0.4},
                     "label": "Trimming"},
                    "Ostrich",
                ),
            }
        )
        resumed = run_scenario(reparams, store_path=store, resume=True)
        fresh = run_scenario(reparams)
        assert [(r.scheme, r.mse) for r in resumed] == [
            (r.scheme, r.mse) for r in fresh
        ]

    def test_rng_override_never_resumes_seed_artifact(self, tmp_path):
        """An rng override is part of the artifact identity (and vice versa)."""
        store = tmp_path / "run.json"
        scenario = ScenarioSpec(**QUICK)
        run_scenario(scenario, rng=123, store_path=store)
        seeded = run_scenario(scenario, store_path=store, resume=True)
        fresh = run_scenario(scenario)
        assert [(r.scheme, r.mse) for r in seeded] == [
            (r.scheme, r.mse) for r in fresh
        ]
        # opaque generators can never be resumed, even by another opaque run
        run_scenario(scenario, rng=ensure_rng(5), store_path=store)
        again = run_scenario(scenario, rng=ensure_rng(6), store_path=store)
        fresh6 = run_scenario(scenario, rng=ensure_rng(6))
        assert [(r.scheme, r.mse) for r in again] == [
            (r.scheme, r.mse) for r in fresh6
        ]

    def test_unknown_scheme_in_scenario_raises(self):
        scenario = ScenarioSpec(**{**QUICK, "schemes": ("NotAScheme",)})
        with pytest.raises(KeyError, match="registered schemes"):
            run_scenario(scenario)

    def test_format_scenario_records(self):
        scenario = ScenarioSpec(**QUICK)
        text = format_scenario_records(run_scenario(scenario))
        assert "attack=bba" in text and "Ostrich" in text and "Trimming" in text


class TestMatrixDriver:
    def test_cross_grid_runs_and_formats(self):
        from repro.experiments.defaults import ExperimentScale
        from repro.experiments.matrix import format_matrix, run_matrix

        scale = ExperimentScale(n_users=400, n_trials=2)
        records = run_matrix(
            scale,
            datasets=("Uniform",),
            attacks=("bba", "ima", "gba"),
            schemes=("Ostrich", "Trimming", "Boxplot"),
            epsilons=(1.0,),
        )
        assert len(records) == 3 * 3  # attacks x schemes at one (dataset, epsilon)
        assert all(np.isfinite(record.mse) for record in records)
        text = format_matrix(records)
        assert "attack=ima" in text
