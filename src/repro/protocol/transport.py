"""Transport stage: identity pass-through (local) or a seeded shuffler.

The shuffler applies a uniform random permutation to each delivery lane (a
batch of reports travelling together: one budget group in the in-memory
path, one group×chunk in the streaming path, one group×block in the
sharded path).  Its RNG is derived from a dedicated
:class:`numpy.random.SeedSequence` namespace, **never** from the round's
main RNG stream, so enabling the shuffler does not consume main-stream
draws — the sharded path's block-seed contract is untouched and merges
stay bit-identical at any shard/worker count.

Because every accumulator folds reports into permutation-invariant
sufficient statistics (exact compensated sums, histogram counts, sketch
counters), the permutation itself cannot change any estimate; what changes
under the shuffle model is what the *adversary* can see (see
:mod:`repro.protocol.client`).  The permutation is still applied — it is
the physical mixing the amplification ledger is conditioned on, and the
property tests assert the statistics are invariant to ``shuffle_seed``.
"""

from __future__ import annotations

import numpy as np

#: SeedSequence namespace separating shuffler lanes from every other stream
SHUFFLER_NAMESPACE = 0x5DAF5_0FF

class IdentityTransport:
    """The local model's transport: reports pass through untouched."""

    is_shuffler = False

    def deliver(self, reports: np.ndarray, lane: tuple[int, ...]) -> np.ndarray:
        return reports


class Shuffler:
    """Seeded uniform permutation per delivery lane.

    Parameters
    ----------
    shuffle_seed:
        Execution-detail reseed of the permutation lanes (default 0).
    """

    is_shuffler = True

    def __init__(self, shuffle_seed: int = 0) -> None:
        self.shuffle_seed = int(shuffle_seed)

    def lane_rng(self, lane: tuple[int, ...]) -> np.random.Generator:
        """The dedicated RNG for one delivery lane."""
        return np.random.default_rng(
            np.random.SeedSequence([SHUFFLER_NAMESPACE, self.shuffle_seed, *lane])
        )

    def deliver(self, reports: np.ndarray, lane: tuple[int, ...]) -> np.ndarray:
        """Break sender ordering within a lane with a uniform permutation."""
        n = int(np.asarray(reports).shape[0])
        if n <= 1:
            return reports
        return reports[self.lane_rng(lane).permutation(n)]


def make_transport(is_shuffle: bool, shuffle_seed: int = 0):
    return Shuffler(shuffle_seed) if is_shuffle else IdentityTransport()


__all__ = ["IdentityTransport", "SHUFFLER_NAMESPACE", "Shuffler", "make_transport"]
