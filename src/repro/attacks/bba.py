"""Biased Byzantine Attack (BBA) — Definition 4.

All colluding users report poison values on one side of the reference mean,
drawn from a :class:`~repro.attacks.distributions.PoisonDistribution` over a
:class:`~repro.attacks.distributions.PoisonRange`.  This is the attack used in
Table I and Figures 5-7, 9(a) and 10 of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackReport
from repro.attacks.distributions import PoisonDistribution, PoisonRange, UniformPoison
from repro.ldp.base import NumericalMechanism
from repro.registry import ATTACKS
from repro.utils.rng import RngLike, ensure_rng


@ATTACKS.register("bba", aliases=("biased",))
class BiasedByzantineAttack(Attack):
    """One-sided poison-value injection.

    Parameters
    ----------
    poison_range:
        Symbolic range the poison values live in (default ``[O, C]``, i.e. the
        whole poisoned side).
    distribution:
        Distribution over the resolved range (default uniform — the paper's
        default setting).
    side:
        ``"right"`` (default, the paper's default poisoned side) or ``"left"``.
    """

    def __init__(
        self,
        poison_range: PoisonRange | None = None,
        distribution: PoisonDistribution | None = None,
        side: str = "right",
    ) -> None:
        if side not in ("left", "right"):
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        self.poison_range = poison_range or PoisonRange.from_mean_to_c(1.0)
        self.distribution = distribution or UniformPoison()
        self.side = side

    def poison_reports(
        self,
        n_byzantine: int,
        mechanism: NumericalMechanism,
        reference_mean: float = 0.0,
        rng: RngLike = None,
    ) -> AttackReport:
        n = self._check_population(n_byzantine)
        rng = ensure_rng(rng)
        if n == 0:
            return AttackReport(reports=np.empty(0), poisoned_side=self.side)
        low, high = self.poison_range.resolve(mechanism, reference_mean, self.side)
        reports = self.distribution.sample(n, low, high, rng)
        reports = self._clip_to_domain(reports, mechanism)
        return AttackReport(reports=reports, poisoned_side=self.side)

    def resolved_range(
        self, mechanism: NumericalMechanism, reference_mean: float = 0.0
    ) -> tuple[float, float]:
        """Concrete poison range for a mechanism (useful for reporting)."""
        return self.poison_range.resolve(mechanism, reference_mean, self.side)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BiasedByzantineAttack(range={self.poison_range}, "
            f"distribution={self.distribution!r}, side={self.side!r})"
        )


__all__ = ["BiasedByzantineAttack"]
