"""Atomic JSON checkpoints for the windowed service.

One checkpoint file per service, overwritten atomically after each completed
window (write to a temp file in the same directory, then ``os.replace``), so
a SIGKILL at any instant leaves either the previous or the new checkpoint —
never a torn file.  The payload carries only sufficient statistics and probe
state (accumulator snapshots, converged EM weights, detector state), so its
size is bounded by the grid geometry, not by how many users the stream has
absorbed.

Python's ``json`` round-trips finite floats exactly (``repr`` emits the
shortest representation that parses back to the same double), which is what
makes resume *bit*-identical rather than merely close.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Mapping

#: bump when the checkpoint layout changes incompatibly
CHECKPOINT_VERSION = 1


def write_checkpoint(path: str, payload: Mapping[str, Any]) -> None:
    """Atomically write a checkpoint payload to ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path: str, expected_digest: str | None = None) -> Dict[str, Any]:
    """Load and structurally validate a checkpoint.

    Raises ``ValueError`` when the file is not a checkpoint of the expected
    version, or — when ``expected_digest`` is given — when it belongs to a
    different service identity (changed window boundaries, seed, probe
    knobs, ...).  A mismatched checkpoint must never be silently resumed:
    the resulting stream would be neither the old one nor the new one.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"checkpoint {path!r} is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ValueError(f"checkpoint {path!r} must hold a JSON object")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {path!r} has version {version!r}, expected "
            f"{CHECKPOINT_VERSION}"
        )
    for key in ("digest", "next_window", "cumulative", "windows", "detector"):
        if key not in payload:
            raise ValueError(f"checkpoint {path!r} is missing key {key!r}")
    if expected_digest is not None and payload["digest"] != expected_digest:
        raise ValueError(
            f"checkpoint {path!r} belongs to a different service configuration "
            f"(digest {payload['digest']!r}, expected {expected_digest!r}); "
            f"delete it or restore the original spec"
        )
    return payload


__all__ = ["CHECKPOINT_VERSION", "load_checkpoint", "write_checkpoint"]
