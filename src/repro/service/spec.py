"""Declarative description of a continuous aggregation service.

A :class:`ServiceSpec` is the windowed counterpart of
:class:`repro.scenario.ScenarioSpec`: a versioned, JSON-serialisable document
describing a *stream* of reporting rounds — users arrive in fixed-size
windows, an attack may switch on at a chosen window, and the collector keeps
a running DAP estimate over everything seen so far.

Service files are what ``python -m repro serve`` executes::

    {
      "name": "service_smoke",
      "epsilon": 1.0,
      "window_size": 5000,
      "n_windows": 12,
      "dataset": "Uniform",
      "attack": {"name": "bba", "poison_range": "[C/2,C]"},
      "gamma": 0.25,
      "attack_start": 6,
      "seed": 7
    }

Identity vs execution details follow the scenario doctrine: everything that
changes a single output bit is part of :meth:`ServiceSpec.document` (and so
of the digest that guards checkpoints), while knobs that only change *how*
the same bits are computed — shard fan-out, worker counts, checkpoint
cadence — are execution details.  Two service-specific callouts:

* ``window_size`` and ``n_windows`` are **identity**: they fix the window
  boundaries and the frozen probe-grid geometry, so changing either is a
  different stream, not a different execution of the same stream.
* ``warm_probe`` and ``probe_strategy`` are **identity** here (unlike the
  batch scenarios, where probe strategy is an execution detail): the service
  guarantees *bit-identical* kill/resume, and warm starts change the
  iterate-level floating point of every window's probe, so they must be
  pinned by the digest for that guarantee to mean anything.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.backends import check_backend
from repro.core.probing import check_probe_strategy
from repro.protocol.plan import check_protocol
from repro.service.checkpoint import DEFAULT_RETAIN
from repro.utils.validation import check_fraction, check_integer, check_positive

#: keys accepted in a service JSON document
SERVICE_KEYS = (
    "name",
    "description",
    "epsilon",
    "epsilon_min",
    "estimator",
    "dataset",
    "attack",
    "gamma",
    "attack_start",
    "window_size",
    "n_windows",
    "seed",
    "input_domain",
    "warm_probe",
    "probe_strategy",
    "protocol",
    "sketch_rows",
    "sketch_width",
    "detector",
    "backend",
    "collect_shards",
    "collect_workers",
    "checkpoint_every",
    "checkpoint_retain",
)

#: default sequential change-detector knobs (see ``repro.service.detector``)
DEFAULT_DETECTOR: Mapping[str, float] = {
    "warmup": 5,
    "threshold": 8.0,
    "drift": 1.0,
    "min_sigma": 0.005,
}


@dataclass
class ServiceSpec:
    """A windowed continuous-aggregation workload.

    Attributes
    ----------
    name:
        Service name; keys the checkpoint file and the results artifact.
    epsilon, epsilon_min, estimator:
        The DAP knobs, as in :class:`repro.core.dap.DAPConfig`.
    dataset:
        Dataset spec (registered name or mapping) the normal users' values
        are drawn from, window by window.
    attack, gamma, attack_start:
        The attack spec, the Byzantine proportion once the attack is live,
        and the first window index (0-based) at which Byzantine users appear.
        Windows before ``attack_start`` are attack-free — that prefix is what
        the change detector calibrates on.
    window_size:
        Users arriving per window.
    n_windows:
        Horizon of the stream.  Also freezes the probe-grid geometry (the
        paper's ``d' = floor(sqrt(N))`` evaluated at the horizon's expected
        probe-group report count), so cumulative statistics from every window
        merge on one grid.
    seed:
        Master seed; window ``w`` consumes a generator derived from
        ``(seed, w)`` only, which is what makes kill/resume bit-identical.
    warm_probe:
        Warm-start each window's probe EMs from the previous window's
        converged weights (the steady-state fast path).  Identity, because it
        changes iterate-level floating point.
    probe_strategy:
        ``"batched"`` or ``"cold"`` (identity here; see module docstring).
    protocol:
        Trust model the windows collect under (``"local"`` / ``"shuffle"``,
        see :data:`repro.protocol.PROTOCOL_NAMES`).  Identity when not the
        default ``"local"`` — the shuffle model changes what the adversary
        observes — and left out of :meth:`document` otherwise, so digests
        of existing local-model services are unchanged.
    sketch_rows, sketch_width:
        Count-sketch geometry for sketch-backed categorical collection.
        Identity when set (the hash rows and width determine every report
        bit); ``None`` leaves them out of :meth:`document`, so digests of
        existing non-sketch services are unchanged.
    detector:
        Change-detector overrides merged over :data:`DEFAULT_DETECTOR`.
    backend, collect_shards, collect_workers, checkpoint_every:
        Execution details: array backend, collection fan-out and checkpoint
        cadence.  Excluded from the digest.
    checkpoint_retain:
        How many last-good checkpoint ancestors the service keeps alongside
        the newest one (the rollback depth of chain recovery).  An execution
        detail: retention bounds how far back a corrupted head can roll
        back, never what a healthy run computes.
    """

    name: str
    description: str = ""
    epsilon: float = 1.0
    epsilon_min: float = 1.0 / 16.0
    estimator: str = "cemf_star"
    dataset: Any = "Uniform"
    attack: Any = "none"
    gamma: float = 0.0
    attack_start: int = 0
    window_size: int = 10_000
    n_windows: int = 20
    seed: int = 0
    input_domain: Tuple[float, float] = (-1.0, 1.0)
    warm_probe: bool = True
    probe_strategy: str = "batched"
    protocol: str = "local"
    sketch_rows: int | None = None
    sketch_width: int | None = None
    detector: Dict[str, Any] = field(default_factory=dict)
    backend: str | None = None
    collect_shards: int = 1
    collect_workers: int | None = None
    checkpoint_every: int = 1
    checkpoint_retain: int = DEFAULT_RETAIN

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("service spec needs a non-empty 'name'")
        check_positive(self.epsilon, "epsilon")
        check_positive(self.epsilon_min, "epsilon_min")
        check_fraction(self.gamma, "gamma")
        check_integer(self.attack_start, "attack_start", minimum=0)
        check_integer(self.window_size, "window_size", minimum=2)
        check_integer(self.n_windows, "n_windows", minimum=1)
        check_integer(self.seed, "seed")
        check_integer(self.collect_shards, "collect_shards", minimum=1)
        if self.collect_workers is not None:
            check_integer(self.collect_workers, "collect_workers", minimum=1)
        check_integer(self.checkpoint_every, "checkpoint_every", minimum=1)
        check_integer(self.checkpoint_retain, "checkpoint_retain", minimum=1)
        check_probe_strategy(self.probe_strategy)
        check_protocol(self.protocol)
        if self.sketch_rows is not None:
            check_integer(self.sketch_rows, "sketch_rows", minimum=1)
        if self.sketch_width is not None:
            check_integer(self.sketch_width, "sketch_width", minimum=2)
        if self.backend is not None:
            check_backend(self.backend)
        if len(self.input_domain) != 2:
            raise ValueError("input_domain must be a [low, high] pair")
        self.input_domain = (float(self.input_domain[0]), float(self.input_domain[1]))
        if self.input_domain[0] >= self.input_domain[1]:
            raise ValueError(
                f"input_domain low must be below high, got {self.input_domain}"
            )
        unknown = set(self.detector) - set(DEFAULT_DETECTOR)
        if unknown:
            raise ValueError(
                f"unknown detector keys {sorted(unknown)}; known: "
                f"{sorted(DEFAULT_DETECTOR)}"
            )

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, payload: Mapping[str, Any]) -> "ServiceSpec":
        """Build a spec from a parsed JSON document (unknown keys rejected)."""
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"service document must be a mapping, got {type(payload).__name__}"
            )
        unknown = set(payload) - set(SERVICE_KEYS)
        if unknown:
            raise ValueError(
                f"unknown service keys {sorted(unknown)}; known keys: "
                f"{', '.join(SERVICE_KEYS)}"
            )
        params = dict(payload)
        if "input_domain" in params:
            params["input_domain"] = tuple(params["input_domain"])
        return cls(**params)

    @classmethod
    def from_file(cls, path: str) -> "ServiceSpec":
        """Load a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls.from_mapping(payload)

    def detector_config(self) -> Dict[str, float]:
        """The detector knobs with defaults applied."""
        merged = dict(DEFAULT_DETECTOR)
        merged.update(self.detector)
        return merged

    def document(self) -> Dict[str, Any]:
        """The service as a canonical JSON-style document.

        Captures every knob that affects a single output bit — window
        boundaries, grids, seeds, probe strategy, warm starts, detector
        thresholds.  Execution details (``backend``, ``collect_shards``,
        ``collect_workers``, ``checkpoint_every``) are excluded, exactly as
        the scenario digest excludes its collection knobs: a stream started
        serially must stay resumable from its checkpoint with a shard pool.
        The sketch geometry knobs enter only when set, so digests of
        existing non-sketch services are unchanged.
        """
        document = {
            "name": self.name,
            "description": self.description,
            "epsilon": self.epsilon,
            "epsilon_min": self.epsilon_min,
            "estimator": self.estimator,
            "dataset": self.dataset,
            "attack": self.attack,
            "gamma": self.gamma,
            "attack_start": self.attack_start,
            "window_size": self.window_size,
            "n_windows": self.n_windows,
            "seed": self.seed,
            "input_domain": list(self.input_domain),
            "warm_probe": self.warm_probe,
            "probe_strategy": self.probe_strategy,
            "detector": self.detector_config(),
        }
        if self.protocol != "local":
            document["protocol"] = self.protocol
        if self.sketch_rows is not None:
            document["sketch_rows"] = self.sketch_rows
        if self.sketch_width is not None:
            document["sketch_width"] = self.sketch_width
        return document

    def digest(self) -> str:
        """Stable hash of :meth:`document`; guards checkpoint compatibility."""
        payload = json.dumps(self.document(), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def execution_details(self) -> Dict[str, Any]:
        """The non-identity knobs, recorded (not enforced) in checkpoints."""
        return {
            "backend": self.backend,
            "collect_shards": self.collect_shards,
            "collect_workers": self.collect_workers,
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_retain": self.checkpoint_retain,
        }

    def default_checkpoint_path(self, directory: str) -> str:
        """The checkpoint file this service uses inside ``directory``."""
        return os.path.join(directory, f"{self.name}.checkpoint.json")


__all__ = ["DEFAULT_DETECTOR", "SERVICE_KEYS", "ServiceSpec"]
