"""Frequency-estimation extension of DAP for categorical data (Section V-D).

The paper's numerical machinery carries over to categorical data almost
unchanged: with k-RR as the perturbation mechanism, the transform matrix's
normal block is the k-RR transition matrix and each *candidate poisoned
category* contributes an identity poison column (Byzantine users report their
poisoned category directly).  The open design point is how to locate the
poisoned categories — the paper sketches a recursive variant of Algorithm 3.

This implementation uses greedy forward selection driven by the EM
log-likelihood: starting from "no category is poisoned", it repeatedly adds
the category whose poison column improves the reconstruction likelihood the
most, and stops when the improvement drops below a threshold.  This realises
the same idea (a poison column on a genuinely poisoned category explains the
observed excess far better than the k-RR mixture can) with a sharper, scale-
aware stopping rule; DESIGN.md records it as an implementation choice.

Once the poisoned categories are known, EMF* with the probed ``gamma_hat``
reconstructs the normal users' frequency histogram, which is the quantity
Figure 9(c)(d) evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Literal, Sequence, Tuple

import numpy as np

from repro.collect.accumulators import CategoryCountAccumulator
from repro.collect.sharding import (
    DEFAULT_SHARD_BLOCK,
    build_shard_plan,
    run_shard_tasks,
)
from repro.collect.streaming import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.ldp.ems import em_reconstruct
from repro.ldp.krr import KRandomizedResponse
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_integer, check_positive

EstimatorName = Literal["emf", "emf_star", "cemf_star"]


def ostrich_frequencies(
    mechanism: KRandomizedResponse, reports: np.ndarray, clip: bool = True
) -> np.ndarray:
    """The undefended frequency estimator (standard k-RR de-biasing)."""
    frequencies = mechanism.estimate_frequencies(reports)
    if clip:
        frequencies = np.clip(frequencies, 0.0, 1.0)
        total = frequencies.sum()
        if total > 0:
            frequencies = frequencies / total
    return frequencies


@dataclass
class FrequencyDAPResult:
    """Outcome of the categorical DAP pipeline.

    Attributes
    ----------
    frequencies:
        Estimated frequency histogram of the *normal* users (sums to one).
    poisoned_categories:
        Categories identified as poisoned, in selection order.
    gamma_hat:
        Estimated fraction of poison reports.
    log_likelihood_gains:
        Likelihood improvement recorded when each poisoned category was added
        (diagnostic for the greedy probe).
    """

    frequencies: np.ndarray
    poisoned_categories: List[int] = field(default_factory=list)
    gamma_hat: float = 0.0
    log_likelihood_gains: List[float] = field(default_factory=list)


class FrequencyDAP:
    """Collusion-robust frequency estimation on top of k-RR.

    Parameters
    ----------
    epsilon:
        Privacy budget of the k-RR reports.
    n_categories:
        Size of the categorical domain.
    estimator:
        ``"emf"`` (plain reconstruction), ``"emf_star"`` (gamma-constrained,
        the default) or ``"cemf_star"`` (additionally suppresses candidate
        poison columns that received negligible mass).
    max_poisoned:
        Upper bound on the number of poisoned categories the probe may flag
        (defaults to half the domain, mirroring the BFT bound).
    min_likelihood_gain:
        Greedy-probe stopping threshold on the per-step log-likelihood gain.
    """

    def __init__(
        self,
        epsilon: float,
        n_categories: int,
        estimator: EstimatorName = "emf_star",
        max_poisoned: int | None = None,
        min_likelihood_gain: float = 2.0,
    ) -> None:
        self.epsilon = check_positive(epsilon, "epsilon")
        self.n_categories = check_integer(n_categories, "n_categories", minimum=2)
        if estimator not in ("emf", "emf_star", "cemf_star"):
            raise ValueError(
                f"estimator must be 'emf', 'emf_star' or 'cemf_star', got {estimator!r}"
            )
        self.estimator = estimator
        self.max_poisoned = (
            max(1, n_categories // 2) if max_poisoned is None else int(max_poisoned)
        )
        self.min_likelihood_gain = check_positive(min_likelihood_gain, "min_likelihood_gain")
        self.mechanism = KRandomizedResponse(epsilon, n_categories)

    # ------------------------------------------------------------------
    # client-side simulation helpers
    # ------------------------------------------------------------------
    def collect(
        self,
        normal_categories: np.ndarray,
        poisoned_categories: Sequence[int] = (),
        n_byzantine: int = 0,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Simulate one collection round.

        Normal users perturb their category with k-RR; Byzantine users report
        one of the ``poisoned_categories`` directly (uniformly at random among
        them), which is the strongest attack available in the k-RR output
        domain.
        """
        rng = ensure_rng(rng)
        normal_categories = np.asarray(normal_categories, dtype=int)
        reports = [self.mechanism.perturb(normal_categories, rng)]
        n_byzantine = check_integer(n_byzantine, "n_byzantine", minimum=0)
        if n_byzantine:
            if not poisoned_categories:
                raise ValueError(
                    "poisoned_categories must be provided when n_byzantine > 0"
                )
            targets = np.asarray(list(poisoned_categories), dtype=int)
            poison = targets[rng.integers(0, targets.size, size=n_byzantine)]
            reports.append(poison)
        return np.concatenate(reports)

    def collect_stream(
        self,
        category_chunks: Iterable[np.ndarray],
        poisoned_categories: Sequence[int] = (),
        n_byzantine: int = 0,
        rng: RngLike = None,
        poison_chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> CategoryCountAccumulator:
        """Chunked collection into a category-count accumulator.

        The streaming counterpart of :meth:`collect`: normal users' category
        chunks are perturbed and counted as they arrive, and Byzantine
        reports are drawn in bounded chunks, so memory never scales with the
        population.  Feed the result to :meth:`estimate_from_counts`.
        """
        rng = ensure_rng(rng)
        accumulator = CategoryCountAccumulator(self.n_categories)
        for chunk in category_chunks:
            chunk = np.asarray(chunk, dtype=int).ravel()
            if chunk.size:
                accumulator.update(self.mechanism.perturb(chunk, rng))
        n_byzantine = check_integer(n_byzantine, "n_byzantine", minimum=0)
        if n_byzantine:
            if not poisoned_categories:
                raise ValueError(
                    "poisoned_categories must be provided when n_byzantine > 0"
                )
            targets = np.asarray(list(poisoned_categories), dtype=int)
            for start, stop in iter_chunks(n_byzantine, poison_chunk_size):
                accumulator.update(
                    targets[rng.integers(0, targets.size, size=stop - start)]
                )
        return accumulator

    def collect_sharded(
        self,
        normal_categories: np.ndarray,
        poisoned_categories: Sequence[int] = (),
        n_byzantine: int = 0,
        rng: RngLike = None,
        n_shards: int = 1,
        n_workers: int | None = None,
        block_size: int = DEFAULT_SHARD_BLOCK,
    ) -> CategoryCountAccumulator:
        """Sharded collection into one merged category-count accumulator.

        The categorical counterpart of
        :meth:`repro.core.dap.DAPProtocol.collect_sharded`: the users are cut
        into fixed-size blocks with one pre-drawn seed each
        (:func:`repro.collect.build_shard_plan`), shards — contiguous runs of
        blocks — are processed independently (optionally over a process
        pool), and the per-shard counts are folded with ``merge()``.  The
        merged counts are bit-identical at any ``n_shards`` / ``n_workers``.
        """
        rng = ensure_rng(rng)
        normal_categories = np.asarray(normal_categories, dtype=int).ravel()
        n_byzantine = check_integer(n_byzantine, "n_byzantine", minimum=0)
        if n_byzantine and not poisoned_categories:
            raise ValueError(
                "poisoned_categories must be provided when n_byzantine > 0"
            )
        targets = np.asarray(list(poisoned_categories), dtype=int)
        plan = build_shard_plan(
            [normal_categories.size],
            [n_byzantine],
            n_shards=n_shards,
            rng=rng,
            block_size=block_size,
        )
        tasks = []
        for shard_index in range(plan.n_shards):
            slices = plan.shard(shard_index)
            if not slices:
                continue
            (piece,) = slices
            tasks.append(
                _FrequencyShardTask(
                    epsilon=self.epsilon,
                    n_categories=self.n_categories,
                    categories=normal_categories[
                        piece.normal_start : piece.normal_stop
                    ],
                    normal_seeds=piece.normal_seeds,
                    n_byzantine=piece.n_byzantine,
                    byzantine_seeds=piece.byzantine_seeds,
                    targets=targets,
                    block_size=block_size,
                )
            )
        accumulator = CategoryCountAccumulator(self.n_categories)
        for state in run_shard_tasks(_run_frequency_shard, tasks, n_workers):
            accumulator.merge(CategoryCountAccumulator.from_state(state))
        return accumulator

    # ------------------------------------------------------------------
    # collector side
    # ------------------------------------------------------------------
    def _build_transform(self, poison_set: Sequence[int]) -> np.ndarray:
        """Normal k-RR block plus identity poison columns for ``poison_set``."""
        normal_block = self.mechanism.transition_matrix()
        if not poison_set:
            return normal_block
        poison_block = np.zeros((self.n_categories, len(poison_set)))
        for column, category in enumerate(poison_set):
            poison_block[category, column] = 1.0
        return np.hstack([normal_block, poison_block])

    def _reconstruct(
        self,
        counts: np.ndarray,
        poison_set: Sequence[int],
        gamma_hat: float | None = None,
    ):
        """Run EM (optionally gamma-constrained) for a given poison set."""
        transform = self._build_transform(poison_set)
        m_step = None
        if gamma_hat is not None and poison_set:
            from repro.core.emf_star import constrained_m_step

            m_step = constrained_m_step(gamma_hat, self.n_categories)
        # the poison columns are one-hot on their category row, so EM can use
        # the split dense + gather/scatter products
        return em_reconstruct(
            transform,
            counts,
            m_step=m_step,
            tol=1e-9,
            max_iter=10_000,
            indicator_tail=np.asarray(list(poison_set), dtype=np.intp),
        )

    def probe_poisoned_categories(
        self, counts: np.ndarray
    ) -> tuple[List[int], List[float]]:
        """Greedy likelihood-driven search for the poisoned categories."""
        counts = np.asarray(counts, dtype=float)
        poison_set: List[int] = []
        gains: List[float] = []
        current_ll = self._reconstruct(counts, poison_set).log_likelihood

        while len(poison_set) < self.max_poisoned:
            best_category = None
            best_ll = current_ll
            for category in range(self.n_categories):
                if category in poison_set:
                    continue
                candidate = self._reconstruct(counts, poison_set + [category])
                if candidate.log_likelihood > best_ll:
                    best_ll = candidate.log_likelihood
                    best_category = category
            if best_category is None:
                break
            gain = best_ll - current_ll
            if gain < self.min_likelihood_gain:
                break
            poison_set.append(best_category)
            gains.append(float(gain))
            current_ll = best_ll
        return poison_set, gains

    def estimate(self, reports: np.ndarray) -> FrequencyDAPResult:
        """Full collector pipeline: probe poisoned categories, then estimate."""
        reports = np.asarray(reports, dtype=int)
        if reports.size == 0:
            raise ValueError("cannot estimate frequencies from zero reports")
        counts = np.bincount(reports, minlength=self.n_categories).astype(float)
        return self.estimate_from_counts(counts)

    def estimate_from_counts(
        self, counts: np.ndarray | CategoryCountAccumulator
    ) -> FrequencyDAPResult:
        """The collector pipeline on category counts (the sufficient statistic).

        Accepts either a raw count vector or the accumulator produced by
        :meth:`collect_stream`.  Category counts accumulated over chunks are
        exactly the bincount of the concatenated stream, so this path is
        bit-identical to :meth:`estimate` on the same reports.
        """
        if isinstance(counts, CategoryCountAccumulator):
            counts = counts.counts_float()
        counts = np.asarray(counts, dtype=float)
        if counts.shape != (self.n_categories,):
            raise ValueError(
                f"counts must have length n_categories={self.n_categories}, "
                f"got shape {counts.shape}"
            )
        if counts.sum() == 0:
            raise ValueError("cannot estimate frequencies from zero reports")

        poison_set, gains = self.probe_poisoned_categories(counts)

        # plain EMF reconstruction gives gamma_hat
        emf = self._reconstruct(counts, poison_set)
        gamma_hat = float(emf.weights[self.n_categories:].sum()) if poison_set else 0.0

        if self.estimator == "emf" or not poison_set:
            weights = emf.weights
        else:
            if self.estimator == "cemf_star" and poison_set:
                # suppress candidate poison columns that received almost no mass
                poison_mass = emf.weights[self.n_categories:]
                threshold = 0.5 * gamma_hat / max(1, len(poison_set))
                kept = [
                    category
                    for category, mass in zip(poison_set, poison_mass)
                    if mass >= threshold
                ]
                poison_set = kept or poison_set
            weights = self._reconstruct(counts, poison_set, gamma_hat=gamma_hat).weights

        normal = np.clip(weights[: self.n_categories], 0.0, None)
        total = normal.sum()
        frequencies = normal / total if total > 0 else np.full(
            self.n_categories, 1.0 / self.n_categories
        )
        return FrequencyDAPResult(
            frequencies=frequencies,
            poisoned_categories=list(poison_set),
            gamma_hat=gamma_hat,
            log_likelihood_gains=gains,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        normal_categories: np.ndarray,
        poisoned_categories: Sequence[int] = (),
        n_byzantine: int = 0,
        rng: RngLike = None,
    ) -> FrequencyDAPResult:
        """Simulate one round end to end (collection + estimation)."""
        reports = self.collect(normal_categories, poisoned_categories, n_byzantine, rng)
        return self.estimate(reports)


# ----------------------------------------------------------------------
# shard workers (module-level, so tasks pickle cleanly into process pools)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _FrequencyShardTask:
    """One shard of a k-RR collection round (picklable)."""

    epsilon: float
    n_categories: int
    categories: np.ndarray
    normal_seeds: Tuple[int, ...]
    n_byzantine: int
    byzantine_seeds: Tuple[int, ...]
    targets: np.ndarray
    block_size: int


def _run_frequency_shard(task: _FrequencyShardTask) -> dict:
    """Perturb + poison one shard into a category-count snapshot."""
    mechanism = KRandomizedResponse(task.epsilon, task.n_categories)
    accumulator = CategoryCountAccumulator(task.n_categories)
    block = task.block_size
    for index, seed in enumerate(task.normal_seeds):
        chunk = task.categories[index * block : (index + 1) * block]
        if not chunk.size:
            continue
        accumulator.update(mechanism.perturb(chunk, np.random.default_rng(int(seed))))
    remaining = task.n_byzantine
    for seed in task.byzantine_seeds:
        n_users_block = min(block, remaining)
        remaining -= n_users_block
        if not n_users_block:
            continue
        block_rng = np.random.default_rng(int(seed))
        accumulator.update(
            task.targets[block_rng.integers(0, task.targets.size, size=n_users_block)]
        )
    return accumulator.state_dict()


__all__ = ["FrequencyDAP", "FrequencyDAPResult", "ostrich_frequencies"]
