"""Registry round-trip: every registered component constructs by name."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.attacks.base import Attack, NoAttack
from repro.datasets.base import CategoricalDataset, NumericalDataset
from repro.defenses.base import Defense
from repro.ldp import PiecewiseMechanism
from repro.ldp.base import CategoricalMechanism, NumericalMechanism
from repro.registry import (
    ALL_REGISTRIES,
    ATTACKS,
    DATASETS,
    DEFENSES,
    MECHANISMS,
    Registry,
    SCHEMES,
)
from repro.simulation.schemes import (
    Scheme,
    SingleRoundScheme,
    make_scheme,
    resolve_mechanism,
    scheme_from_spec,
)


class TestRegistryCore:
    def test_case_insensitive_and_aliases(self):
        assert MECHANISMS.get("Piecewise") is MECHANISMS.get("pm")
        assert DEFENSES.get("KMEANS") is DEFENSES.get("K-means")

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="registered defenses: .*trimming"):
            DEFENSES.get("nope")
        with pytest.raises(KeyError, match="registered attacks"):
            ATTACKS.create("nope")

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("a", aliases=("b",))(object)

        def other():  # pragma: no cover - never called
            pass

        with pytest.raises(ValueError, match="already registered"):
            registry.register("b")(other)

    def test_defaults_merge_under_kwargs(self):
        attack = ATTACKS.create("evasion")
        assert attack.evasive_fraction == 0.2
        attack = ATTACKS.create("evasion", evasive_fraction=0.4)
        assert attack.evasive_fraction == 0.4

    def test_failed_component_load_retries(self, monkeypatch):
        """A failing component import must re-raise on every lookup, not latch."""
        import repro.registry as registry_module

        monkeypatch.setattr(registry_module, "_components_loaded", False)
        monkeypatch.setattr(
            registry_module, "_COMPONENT_MODULES", ("repro.no_such_module",)
        )
        for _ in range(2):  # the failure must not be swallowed on retry
            with pytest.raises(ModuleNotFoundError):
                ATTACKS.names()
        monkeypatch.undo()
        assert "bba" in ATTACKS.names()

    def test_containment_and_listing(self):
        assert "bba" in ATTACKS and "biased" in ATTACKS
        assert "nope" not in ATTACKS
        for registry in ALL_REGISTRIES.values():
            assert len(registry) == len(registry.names()) > 0


class TestRoundTrip:
    """Every registered name constructs a working component."""

    def test_every_mechanism_constructs_and_perturbs(self, rng):
        for entry in MECHANISMS.entries():
            kind = entry.metadata["kind"]
            if kind == "categorical":
                mechanism = MECHANISMS.create(entry.name, epsilon=1.0, n_categories=8)
                assert isinstance(mechanism, CategoricalMechanism)
                reports = mechanism.perturb(np.array([0, 3, 7]), rng)
            else:
                mechanism = MECHANISMS.create(entry.name, epsilon=1.0)
                assert isinstance(mechanism, NumericalMechanism)
                low, high = mechanism.input_domain
                values = low + np.array([0.25, 0.5, 0.75]) * (high - low)
                reports = mechanism.perturb(values, rng)
            assert len(reports) == 3

    def test_every_attack_constructs_and_poisons(self, rng, pm_1):
        for name in ATTACKS.names():
            attack = ATTACKS.create(name)
            assert isinstance(attack, Attack)
            report = attack.poison_reports(10, pm_1, 0.0, rng)
            assert report.n == (0 if isinstance(attack, NoAttack) else 10)

    def test_every_defense_constructs_and_estimates(self, rng, pm_1):
        reports = pm_1.perturb(rng.uniform(-1, 1, size=500), rng)
        for name in DEFENSES.names():
            defense = DEFENSES.create(name)
            assert isinstance(defense, Defense)
            estimate = defense.estimate_mean(reports, pm_1, rng).estimate
            assert np.isfinite(estimate)

    def test_every_scheme_and_defense_name_makes_a_scheme(self):
        for name in (*SCHEMES.names(), *DEFENSES.names()):
            scheme = make_scheme(name, epsilon=1.0)
            assert isinstance(scheme, Scheme) and scheme.name

    def test_every_dataset_loads(self):
        for name in DATASETS.names():
            dataset = DATASETS.create(name, n_samples=200, rng=0)
            assert isinstance(dataset, (NumericalDataset, CategoricalDataset))
            assert len(dataset) == 200


class TestSchemeConstruction:
    def test_unknown_scheme_keyerror_lists_names(self):
        with pytest.raises(KeyError, match="dap-cemf\\*.*trimming"):
            make_scheme("not-a-scheme", epsilon=1.0)

    def test_mechanism_by_name(self):
        scheme = make_scheme("Ostrich", 1.0, mechanism_factory="square-wave")
        assert type(scheme.mechanism).__name__ == "SquareWaveMechanism"

    def test_categorical_mechanism_rejected(self):
        with pytest.raises(ValueError, match="categorical"):
            resolve_mechanism("olh")

    def test_defense_display_name_is_canonical(self):
        assert make_scheme("ostrich", 1.0).name == "Ostrich"
        assert make_scheme("kmeans", 1.0).name == "K-means"

    def test_scheme_from_spec_string_and_mapping(self):
        assert scheme_from_spec("Trimming", epsilon=1.0).name == "Trimming"
        scheme = scheme_from_spec(
            {"defense": "trimming", "params": {"trim_fraction": 0.3},
             "label": "Trim(0.3)"},
            epsilon=1.0,
        )
        assert isinstance(scheme, SingleRoundScheme)
        assert scheme.name == "Trim(0.3)"
        assert scheme.defense.trim_fraction == 0.3

    def test_scheme_from_spec_mechanism_name(self):
        scheme = scheme_from_spec(
            {"name": "DAP-EMF*", "mechanism": "piecewise"}, epsilon=1.0
        )
        assert scheme.config.mechanism_factory is PiecewiseMechanism

    def test_scheme_from_spec_validation(self):
        with pytest.raises(ValueError, match="exactly one of"):
            scheme_from_spec({"name": "Ostrich", "defense": "trimming"}, epsilon=1.0)
        with pytest.raises(ValueError, match="exactly one of"):
            scheme_from_spec({}, epsilon=1.0)
        with pytest.raises(ValueError, match="unknown scheme-spec keys"):
            scheme_from_spec({"name": "Ostrich", "bogus": 1}, epsilon=1.0)
        with pytest.raises(KeyError, match="registered defenses"):
            scheme_from_spec({"defense": "nope"}, epsilon=1.0)

    def test_registered_builders_are_picklable(self):
        scheme = make_scheme("DAP-CEMF*", epsilon=1.0)
        clone = pickle.loads(pickle.dumps(scheme))
        assert clone.name == "DAP-CEMF*"
