"""repro — reproduction of "Differential Aggregation against General Colluding
Attackers" (ICDE 2023).

The package implements collusion-robust mean and frequency estimation under
Local Differential Privacy:

* :mod:`repro.ldp` — LDP perturbation mechanisms (Piecewise, Square Wave,
  Duchi, Hybrid, Laplace, k-RR, OUE, OLH) and budget accounting;
* :mod:`repro.attacks` — the General / Biased Byzantine threat models, input
  manipulation and evasion attacks;
* :mod:`repro.defenses` — the baselines DAP is compared against (Ostrich,
  Trimming, k-means defence, boxplot, isolation forest);
* :mod:`repro.core` — the paper's contribution: the EMF family of
  reconstruction filters, Byzantine feature probing and the multi-group
  Differential Aggregation Protocol;
* :mod:`repro.collect` — streaming sufficient-statistics accumulators, the
  constant-memory collection layer behind ``DAPProtocol.collect_stream`` and
  multi-million-user scenarios;
* :mod:`repro.datasets` — the evaluation datasets (synthetic Beta draws and
  offline substitutes for Taxi, Retirement and COVID-19);
* :mod:`repro.simulation` / :mod:`repro.experiments` — the experiment harness
  regenerating every table and figure of the paper;
* :mod:`repro.registry` / :mod:`repro.scenario` — named-component registries
  and the declarative scenario layer behind the ``python -m repro`` CLI,
  which runs any attack x defense x epsilon x dataset grid through the
  parallel engine.

Quickstart::

    import numpy as np
    from repro import DAPConfig, DAPProtocol
    from repro.attacks import BiasedByzantineAttack, PAPER_POISON_RANGES
    from repro.datasets import taxi_dataset

    data = taxi_dataset(n_samples=20_000, rng=0)
    attack = BiasedByzantineAttack(PAPER_POISON_RANGES["[C/2,C]"])
    protocol = DAPProtocol(DAPConfig(epsilon=1.0))
    result = protocol.run(data.values, attack, n_byzantine=5_000, rng=1)
    print(result.estimate, data.true_mean)
"""

from repro.core import (
    BaselineProtocol,
    DAPConfig,
    DAPProtocol,
    DAPResult,
    FrequencyDAP,
    run_emf,
    run_emf_star,
    run_cemf_star,
    estimate_byzantine_features,
)
from repro.collect import GroupAccumulator, GroupStats
from repro.ldp import PiecewiseMechanism, SquareWaveMechanism, KRandomizedResponse
from repro.scenario import ScenarioSpec, run_scenario
from repro.simulation.population import stream_population

__version__ = "1.3.0"

__all__ = [
    "BaselineProtocol",
    "DAPConfig",
    "DAPProtocol",
    "DAPResult",
    "FrequencyDAP",
    "run_emf",
    "run_emf_star",
    "run_cemf_star",
    "estimate_byzantine_features",
    "GroupAccumulator",
    "GroupStats",
    "stream_population",
    "PiecewiseMechanism",
    "SquareWaveMechanism",
    "KRandomizedResponse",
    "ScenarioSpec",
    "run_scenario",
    "__version__",
]
