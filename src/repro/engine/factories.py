"""Picklable point -> component factories shared by the figure drivers.

The parallel executor ships the whole :class:`~repro.engine.spec.ExperimentSpec`
to worker processes, so factories must survive pickling — which rules out the
lambdas the legacy drivers used.  These small frozen dataclasses cover the
common shapes; drivers with figure-specific logic define their own factory
classes at module level in the same style.

All scheme-building factories construct components through the shared
registries (:mod:`repro.registry`): schemes, defences and mechanisms are
referenced by registered name, and an unknown name raises ``KeyError``
listing what is available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence, Tuple

from repro.attacks import BiasedByzantineAttack, PAPER_POISON_RANGES
from repro.attacks.base import Attack
from repro.datasets.base import NumericalDataset
from repro.simulation.schemes import (
    MechanismFactory,
    Scheme,
    make_scheme,
    resolve_mechanism,
    scheme_from_spec,
)

#: default mechanism name used when a factory is not told otherwise
DEFAULT_MECHANISM = "piecewise"


@dataclass(frozen=True)
class SchemesByName:
    """Build the named registered schemes at the point's ``epsilon``."""

    schemes: Tuple[str, ...]
    epsilon_min: float = 1.0 / 16.0
    epsilon_key: str = "epsilon"
    mechanism: str | MechanismFactory = DEFAULT_MECHANISM

    def __call__(self, point: Mapping) -> Sequence[Scheme]:
        epsilon = float(point[self.epsilon_key])
        mechanism_factory = resolve_mechanism(self.mechanism)
        return [
            make_scheme(
                name,
                epsilon=epsilon,
                epsilon_min=self.epsilon_min,
                mechanism_factory=mechanism_factory,
            )
            for name in self.schemes
        ]


@dataclass(frozen=True)
class FixedEpsilonSchemes:
    """Build the named registered schemes at one fixed ``epsilon``."""

    schemes: Tuple[str, ...]
    epsilon: float
    epsilon_min: float = 1.0 / 16.0
    mechanism: str | MechanismFactory = DEFAULT_MECHANISM

    def __call__(self, point: Mapping) -> Sequence[Scheme]:
        mechanism_factory = resolve_mechanism(self.mechanism)
        return [
            make_scheme(
                name,
                epsilon=self.epsilon,
                epsilon_min=self.epsilon_min,
                mechanism_factory=mechanism_factory,
            )
            for name in self.schemes
        ]


@dataclass(frozen=True)
class SchemesFromSpecs:
    """Build schemes from declarative specs at the point's ``epsilon``.

    Each element of ``specs`` is a registered scheme/defence name or a
    mapping understood by
    :func:`~repro.simulation.schemes.scheme_from_spec` — the construction
    path behind scenario files and the cross-grid drivers.
    """

    specs: Tuple[Any, ...]
    epsilon_min: float = 1.0 / 16.0
    epsilon_key: str = "epsilon"
    default_mechanism: str | MechanismFactory = DEFAULT_MECHANISM

    def __call__(self, point: Mapping) -> Sequence[Scheme]:
        epsilon = float(point[self.epsilon_key])
        return [
            scheme_from_spec(
                spec,
                epsilon=epsilon,
                epsilon_min=self.epsilon_min,
                default_mechanism=self.default_mechanism,
            )
            for spec in self.specs
        ]


@dataclass(frozen=True)
class PoisonRangeAttack:
    """A Biased Byzantine Attack on the point's named poison range."""

    range_key: str = "poison_range"
    side: str = "right"

    def __call__(self, point: Mapping) -> Attack:
        return BiasedByzantineAttack(
            PAPER_POISON_RANGES[point[self.range_key]], side=self.side
        )


@dataclass(frozen=True)
class FixedAttack:
    """The same attack instance at every point (attacks are stateless)."""

    attack: Attack | None

    def __call__(self, point: Mapping) -> Attack | None:
        return self.attack


@dataclass(frozen=True)
class AttackLookup:
    """Serve pre-built attacks keyed by the point's attack label."""

    attacks: Mapping[str, Attack | None]
    attack_key: str = "attack"

    def __call__(self, point: Mapping) -> Attack | None:
        label = point[self.attack_key]
        try:
            return self.attacks[label]
        except KeyError:
            raise KeyError(
                f"unknown attack label {label!r}; available: "
                f"{', '.join(map(str, self.attacks))}"
            ) from None


@dataclass(frozen=True)
class DatasetLookup:
    """Serve pre-loaded datasets keyed by the point's dataset name."""

    datasets: Mapping[str, NumericalDataset]
    dataset_key: str = "dataset"

    def __call__(self, point: Mapping) -> NumericalDataset:
        return self.datasets[point[self.dataset_key]]


@dataclass(frozen=True)
class FixedDataset:
    """The same dataset at every point."""

    dataset: NumericalDataset

    def __call__(self, point: Mapping) -> NumericalDataset:
        return self.dataset


@dataclass(frozen=True)
class PointKey:
    """Read a per-point scalar (e.g. a swept ``gamma``) from the point."""

    key: str

    def __call__(self, point: Mapping) -> float:
        return point[self.key]


__all__ = [
    "DEFAULT_MECHANISM",
    "SchemesByName",
    "FixedEpsilonSchemes",
    "SchemesFromSpecs",
    "PoisonRangeAttack",
    "FixedAttack",
    "AttackLookup",
    "DatasetLookup",
    "FixedDataset",
    "PointKey",
]
